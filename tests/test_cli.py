"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main

ACL_TEXT = """\
permit ip 192.0.2.0/24 0.0.0.0/0
permit tcp 0.0.0.0/0 192.0.2.0/24 established
deny ip 0.0.0.0/0 192.0.2.0/24
"""


@pytest.fixture()
def acl_file(tmp_path):
    path = tmp_path / "policy.acl"
    path.write_text(ACL_TEXT)
    return str(path)


class TestMatchCommand:
    def test_permitted_packet_exits_zero(self, acl_file, capsys):
        code = main(
            ["match", acl_file, "--src", "192.0.2.7", "--dst", "8.8.8.8", "--proto", "6"]
        )
        assert code == 0
        assert "matched rule 1" in capsys.readouterr().out

    def test_denied_packet_exits_one(self, acl_file, capsys):
        code = main(
            [
                "match", acl_file,
                "--src", "8.8.8.8", "--dst", "192.0.2.7",
                "--proto", "6", "--flags", "0x02",
            ]
        )
        assert code == 1
        assert "deny" in capsys.readouterr().out

    def test_established_flag_permitted(self, acl_file, capsys):
        code = main(
            [
                "match", acl_file,
                "--src", "8.8.8.8", "--dst", "192.0.2.7",
                "--proto", "6", "--flags", "0x10",
            ]
        )
        assert code == 0
        assert "established" in capsys.readouterr().out

    def test_no_match_is_implicit_deny(self, acl_file, capsys):
        code = main(
            ["match", acl_file, "--src", "8.8.8.8", "--dst", "9.9.9.9", "--proto", "17"]
        )
        assert code == 1
        assert "implicit deny" in capsys.readouterr().out


class TestDatasetsCommand:
    def test_lists_sizes(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "D_0: 17 rules, 18 ternary entries" in out
        assert "classbench sizes" in out


class TestExperimentCommand:
    def test_table3_prints_and_saves(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        assert main(["experiment", "table3", "--save"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert (tmp_path / "table3.txt").exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestGenerateCommand:
    def test_campus_with_trace(self, tmp_path, capsys):
        acl_path = str(tmp_path / "d1.acl")
        trace_path = str(tmp_path / "d1.trace")
        code = main(
            [
                "generate", "campus", "--q", "1", "-o", acl_path,
                "--trace", trace_path, "--trace-count", "100",
            ]
        )
        assert code == 0
        from repro.workloads.io import load_acl, load_trace

        assert len(load_acl(acl_path)) == 34
        queries, key_length = load_trace(trace_path)
        assert len(queries) == 100 and key_length == 128

    def test_classbench(self, tmp_path):
        acl_path = str(tmp_path / "fw.acl")
        assert main(["generate", "classbench", "--profile", "fw", "--size", "50",
                     "-o", acl_path]) == 0
        from repro.workloads.io import load_acl

        assert len(load_acl(acl_path)) == 50

    def test_scan_trace(self, tmp_path):
        acl_path = str(tmp_path / "d0.acl")
        trace_path = str(tmp_path / "scan.trace")
        assert main(["generate", "campus", "--q", "0", "-o", acl_path,
                     "--trace", trace_path, "--trace-count", "10",
                     "--traffic", "scan"]) == 0
        from repro.acl.layout import LAYOUT_V4
        from repro.workloads.io import load_trace

        queries, _ = load_trace(trace_path)
        assert all(LAYOUT_V4.unpack_query(q)["dst_port"] == 5060 for q in queries)


class TestCompileCommand:
    def test_compile_to_binary(self, acl_file, tmp_path, capsys):
        out = str(tmp_path / "table.plm")
        assert main(["compile", acl_file, "-o", out]) == 0
        from repro.core.serialize import load_plus

        matcher = load_plus(out)
        assert matcher.stride == 8
        assert len(matcher) == 4  # 3 rules, established doubles one

    def test_compile_with_compression(self, tmp_path, capsys):
        from repro.core.serialize import load_plus

        # Two adjacent exact ports in one rule class merge to a prefix.
        acl_path = tmp_path / "c.acl"
        acl_path.write_text(
            "permit tcp any any eq 80\npermit tcp any any eq 81\n"
        )
        out = str(tmp_path / "c.plm")
        assert main(["compile", str(acl_path), "-o", out, "--compress"]) == 0
        assert "compressed" in capsys.readouterr().out
        matcher = load_plus(out)
        # Compression merges only same-(value, priority) classes; two
        # distinct rules stay distinct but the table still matches both.
        from repro.packet.headers import PacketHeader

        q80 = PacketHeader(1, 2, 6, 3, 80).to_query()
        q81 = PacketHeader(1, 2, 6, 3, 81).to_query()
        assert matcher.lookup(q80) is not None
        assert matcher.lookup(q81) is not None


class TestAnalyzeCommand:
    def test_clean_acl_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.acl"
        path.write_text("permit tcp any 10.0.0.0/8\npermit udp any 10.0.0.0/8\n")
        assert main(["analyze", str(path)]) == 0
        assert "0 shadowed, 0 correlations" in capsys.readouterr().out

    def test_redundant_rule_flagged(self, tmp_path, capsys):
        path = tmp_path / "dup.acl"
        path.write_text("permit ip 10.0.0.0/8 any\npermit ip 10.1.0.0/16 any\n")
        assert main(["analyze", str(path)]) == 1
        assert "redundant" in capsys.readouterr().out

    def test_generalizations_summarized(self, tmp_path, capsys):
        path = tmp_path / "idiom.acl"
        path.write_text(
            "permit tcp any 10.0.0.32/27 eq 80\ndeny ip any 10.0.0.0/8\n"
        )
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 generalizations" in out
        assert "generalizes" not in out  # only listed with --verbose
        assert main(["analyze", str(path), "--verbose"]) == 0
        assert "generalizes" in capsys.readouterr().out


class TestReplayCommand:
    @pytest.fixture()
    def dataset(self, tmp_path):
        acl_path = str(tmp_path / "d0.acl")
        trace_path = str(tmp_path / "d0.trace")
        main(["generate", "campus", "--q", "0", "-o", acl_path,
              "--trace", trace_path, "--trace-count", "80"])
        return acl_path, trace_path

    def test_replay_trace(self, dataset, capsys):
        acl_path, trace_path = dataset
        assert main(["replay", acl_path, trace_path]) == 0
        out = capsys.readouterr().out
        assert "replayed 80 packets" in out
        assert "permit" in out

    @pytest.mark.parametrize("matcher", ["sorted-list", "vectorized", "tcam"])
    def test_replay_other_matchers(self, dataset, matcher, capsys):
        acl_path, trace_path = dataset
        assert main(["replay", acl_path, trace_path, "--matcher", matcher]) == 0
        assert matcher in capsys.readouterr().out

    def test_replay_pcap(self, dataset, tmp_path, capsys):
        from repro.packet import PacketHeader, PcapPacket, encode_packet, write_pcap

        acl_path, _ = dataset
        pcap_path = str(tmp_path / "t.pcap")
        header = PacketHeader(0x0A000001, 0x08080808, 6, 40000, 443, 0x02)
        write_pcap(pcap_path, [PcapPacket(0.0, encode_packet(header))])
        assert main(["replay", acl_path, pcap_path]) == 0
        assert "replayed 1 packets" in capsys.readouterr().out

    def test_key_length_mismatch(self, dataset, tmp_path, capsys):
        from repro.workloads.io import save_trace

        acl_path, _ = dataset
        bad_trace = str(tmp_path / "bad.trace")
        save_trace([1, 2, 3], 64, bad_trace)
        assert main(["replay", acl_path, bad_trace]) == 2
        assert "64 bits" in capsys.readouterr().err

    def test_empty_trace(self, dataset, tmp_path, capsys):
        from repro.workloads.io import save_trace

        acl_path, _ = dataset
        empty = str(tmp_path / "empty.trace")
        save_trace([], 128, empty)
        assert main(["replay", acl_path, empty]) == 2


class TestBinaryPolicyReplay:
    """Replay of compiled .plm/.plmf policies, and the fail-closed CLI
    edge: corrupt or truncated tables must exit nonzero with a one-line
    error and a re-compile hint, never a traceback."""

    @pytest.fixture()
    def dataset(self, tmp_path):
        acl_path = str(tmp_path / "d0.acl")
        trace_path = str(tmp_path / "d0.trace")
        main(["generate", "campus", "--q", "0", "-o", acl_path,
              "--trace", trace_path, "--trace-count", "80"])
        return acl_path, trace_path

    def test_replay_compiled_plm(self, dataset, tmp_path, capsys):
        acl_path, trace_path = dataset
        plm = str(tmp_path / "p.plm")
        assert main(["compile", acl_path, "-o", plm]) == 0
        capsys.readouterr()
        assert main(["replay", plm, trace_path]) == 0
        out = capsys.readouterr().out
        assert "replayed 80 packets" in out
        assert "match" in out  # binary policies report match/implicit-deny

    def test_replay_compiled_plmf(self, dataset, tmp_path, capsys):
        acl_path, trace_path = dataset
        plmf = str(tmp_path / "p.plmf")
        assert main(["compile", acl_path, "-o", plmf, "--frozen"]) == 0
        capsys.readouterr()
        assert main(["replay", plmf, trace_path]) == 0
        assert "replayed 80 packets" in capsys.readouterr().out

    @pytest.mark.parametrize("frozen", [False, True])
    def test_truncated_policy_fails_closed(self, dataset, tmp_path, capsys, frozen):
        acl_path, trace_path = dataset
        suffix = "plmf" if frozen else "plm"
        policy = tmp_path / f"p.{suffix}"
        argv = ["compile", acl_path, "-o", str(policy)]
        if frozen:
            argv.append("--frozen")
        assert main(argv) == 0
        blob = policy.read_bytes()
        policy.write_bytes(blob[: len(blob) // 2])
        capsys.readouterr()
        assert main(["replay", str(policy), trace_path]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "corrupt" in err
        assert "re-compile" in err
        assert "Traceback" not in err

    def test_bit_flipped_policy_fails_closed(self, dataset, tmp_path, capsys):
        acl_path, trace_path = dataset
        plm = tmp_path / "p.plm"
        assert main(["compile", acl_path, "-o", str(plm)]) == 0
        blob = bytearray(plm.read_bytes())
        blob[len(blob) // 3] ^= 0xFF
        plm.write_bytes(bytes(blob))
        capsys.readouterr()
        code = main(["replay", str(plm), trace_path])
        err = capsys.readouterr().err
        # A flip the checksum layer catches exits 2; one that survives
        # decoding must still replay cleanly — never a traceback.
        assert code in (0, 2)
        assert "Traceback" not in err

    def test_compile_rejects_binary_input(self, dataset, tmp_path, capsys):
        acl_path, _ = dataset
        plm = str(tmp_path / "p.plm")
        assert main(["compile", acl_path, "-o", plm]) == 0
        capsys.readouterr()
        assert main(["compile", plm, "-o", str(tmp_path / "q.plm")]) == 2
        err = capsys.readouterr().err
        assert "compiled Palmtrie+ table, not ACL text" in err

    def test_replay_pcap_against_frozen_policy(self, dataset, tmp_path, capsys):
        # A frozen 128-bit policy still maps pcap packets via LAYOUT_V4.
        acl_path, _ = dataset
        from repro.packet import PacketHeader, PcapPacket, encode_packet, write_pcap

        plmf = str(tmp_path / "p.plmf")
        assert main(["compile", acl_path, "-o", plmf, "--frozen"]) == 0
        pcap_path = str(tmp_path / "t.pcap")
        header = PacketHeader(0x0A000001, 0x08080808, 6, 40000, 443, 0x02)
        write_pcap(pcap_path, [PcapPacket(0.0, encode_packet(header))])
        capsys.readouterr()
        assert main(["replay", plmf, pcap_path]) == 0
        assert "replayed 1 packets" in capsys.readouterr().out


class TestHealthCommand:
    @pytest.fixture()
    def dataset(self, tmp_path):
        acl_path = str(tmp_path / "d0.acl")
        trace_path = str(tmp_path / "d0.trace")
        main(["generate", "campus", "--q", "0", "-o", acl_path,
              "--trace", trace_path, "--trace-count", "80"])
        return acl_path, trace_path

    def test_healthy_replay_exits_zero(self, dataset, capsys):
        acl_path, trace_path = dataset
        assert main(["health", acl_path, trace_path, "--freeze",
                     "--shadow-sample", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "health         ok" in out
        assert "serving plane  frozen" in out
        assert "breaker        closed" in out
        assert "shadow verify" in out

    def test_valid_checkpoint_reported(self, dataset, tmp_path, capsys):
        from repro.core.plus import PalmtriePlus
        from repro.resilience import write_checkpoint
        from repro.workloads.io import load_acl
        from repro.acl.compiler import compile_acl

        acl_path, trace_path = dataset
        compiled = compile_acl(load_acl(acl_path))
        matcher = PalmtriePlus.build(compiled.entries, compiled.layout.length, stride=8)
        ckpt = str(tmp_path / "c.plmc")
        write_checkpoint(ckpt, matcher, epoch=2, generation=9)
        assert main(["health", acl_path, trace_path, "--checkpoint", ckpt]) == 0
        out = capsys.readouterr().out
        assert "valid (epoch 2, generation 9" in out

    def test_corrupt_checkpoint_exits_two(self, dataset, tmp_path, capsys):
        acl_path, trace_path = dataset
        ckpt = tmp_path / "c.plmc"
        ckpt.write_bytes(b"XXXX not a checkpoint")
        assert main(["health", acl_path, trace_path,
                     "--checkpoint", str(ckpt)]) == 2
        out = capsys.readouterr().out
        assert "INVALID" in out

    def test_bad_shadow_sample_rejected(self, dataset, capsys):
        acl_path, trace_path = dataset
        assert main(["health", acl_path, trace_path,
                     "--shadow-sample", "1.5"]) == 2
        assert "--shadow-sample" in capsys.readouterr().err


class TestDiffCommand:
    def test_equivalent_reorder_exits_zero(self, tmp_path, capsys):
        old = tmp_path / "old.acl"
        new = tmp_path / "new.acl"
        old.write_text("permit tcp any 10.0.0.0/8\ndeny udp any 11.0.0.0/8\n")
        new.write_text("deny udp any 11.0.0.0/8\npermit tcp any 10.0.0.0/8\n")
        assert main(["diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "~" in out and "semantics preserved" in out

    def test_semantic_change_exits_one(self, tmp_path, capsys):
        old = tmp_path / "old.acl"
        new = tmp_path / "new.acl"
        old.write_text("deny tcp any 10.0.0.0/8 eq 80\npermit tcp any 10.0.0.0/8\n")
        new.write_text("permit tcp any 10.0.0.0/8\ndeny tcp any 10.0.0.0/8 eq 80\n")
        assert main(["diff", str(old), str(new), "--samples", "2500"]) == 1
        out = capsys.readouterr().out
        assert "SEMANTICS CHANGED" in out
        assert "counterexample packet" in out

    def test_identical(self, tmp_path, capsys):
        path = tmp_path / "a.acl"
        path.write_text("permit ip any any\n")
        assert main(["diff", str(path), str(path)]) == 0
        assert "identical" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
