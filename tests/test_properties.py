"""Property-based tests (hypothesis) over the core invariants.

The central property is the paper's validation invariant: every
structure must agree with the brute-force oracle on every query.  The
supporting properties pin down the key algebra and the key-path
decomposition the multi-bit stride relies on.
"""

from hypothesis import given, settings, strategies as st

from helpers import assert_same_result, oracle_lookup
from repro.core.basic import BasicPalmtrie
from repro.core.multibit import EXACT, MultibitPalmtrie, key_path
from repro.core.plus import PalmtriePlus
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey

KEY_LENGTH = 12

ternary_text = st.text(alphabet="01*", min_size=KEY_LENGTH, max_size=KEY_LENGTH)
ternary_keys = ternary_text.map(TernaryKey.from_string)
queries = st.integers(0, (1 << KEY_LENGTH) - 1)


def entries_strategy(max_size=40):
    return st.lists(
        st.tuples(ternary_keys, st.integers(0, 100)),
        min_size=1,
        max_size=max_size,
    ).map(
        lambda pairs: [
            TernaryEntry(key, i, priority) for i, (key, priority) in enumerate(pairs)
        ]
    )


# ----------------------------------------------------------------------
# Key algebra
# ----------------------------------------------------------------------

@given(text=ternary_text)
def test_key_string_roundtrip(text):
    assert TernaryKey.from_string(text).to_string() == text


@given(key=ternary_keys, query=queries)
def test_match_agrees_with_digitwise_definition(key, query):
    expected = all(
        key.bit(i) == "*" or key.bit(i) == str((query >> i) & 1)
        for i in range(KEY_LENGTH)
    )
    assert key.matches(query) == expected


@given(a=ternary_keys, b=ternary_keys, query=queries)
def test_covers_implies_match_subset(a, b, query):
    if a.covers(b) and b.matches(query):
        assert a.matches(query)


@given(a=ternary_keys, b=ternary_keys)
def test_overlap_iff_common_match_exists(a, b):
    if a.wildcard_count + b.wildcard_count <= 16:
        common = set(a.enumerate_matches()) & set(b.enumerate_matches())
        assert a.overlaps(b) == bool(common)


@given(key=ternary_keys)
def test_enumerate_matches_cardinality(key):
    matches = list(key.enumerate_matches())
    assert len(matches) == 1 << key.wildcard_count
    assert len(set(matches)) == len(matches)
    assert all(key.matches(m) for m in matches)


@given(a=ternary_keys, b=ternary_keys)
def test_first_diff_bit_symmetric_and_consistent(a, b):
    pos = a.first_diff_bit(b)
    assert pos == b.first_diff_bit(a)
    if pos == -1:
        assert a == b
    else:
        assert a.bit(pos) != b.bit(pos)
        for i in range(pos + 1, KEY_LENGTH):
            assert a.bit(i) == b.bit(i)


# ----------------------------------------------------------------------
# Key-path decomposition (§3.4)
# ----------------------------------------------------------------------

@given(key=ternary_keys, stride=st.integers(1, KEY_LENGTH))
def test_key_path_reconstructs_key(key, stride):
    """The steps encode the key exactly: rebuilding the digits from the
    path must reproduce the original key (padding below bit 0 aside)."""
    digits = ["?"] * KEY_LENGTH

    def set_digit(position, value):
        if 0 <= position < KEY_LENGTH:
            assert digits[position] == "?", "digit written twice"
            digits[position] = value

    for bit, kind, index in key_path(key, stride):
        if kind == EXACT:
            for offset in range(stride):
                set_digit(bit + offset, str((index >> offset) & 1))
        else:
            # invert: index = 2**plen + p - 1 with p in [0, 2**plen)
            plen = (index + 1).bit_length() - 1
            p = index + 1 - (1 << plen)
            star_position = bit + stride - 1 - plen
            set_digit(star_position, "*")
            for offset in range(plen):
                set_digit(
                    star_position + 1 + offset, str((p >> offset) & 1)
                )
    rebuilt = "".join(reversed(digits)).replace("?", "")
    assert len(rebuilt) == KEY_LENGTH
    assert rebuilt == key.to_string()


@given(key=ternary_keys, stride=st.integers(1, KEY_LENGTH))
def test_key_path_bit_bounds(key, stride):
    steps = key_path(key, stride)
    bits = [s[0] for s in steps]
    assert bits[0] == KEY_LENGTH - stride
    assert all(b > -stride for b in bits)
    assert bits == sorted(bits, reverse=True)


@given(a=ternary_keys, b=ternary_keys, stride=st.integers(1, KEY_LENGTH))
def test_equal_paths_imply_equal_keys(a, b, stride):
    if key_path(a, stride) == key_path(b, stride):
        assert a == b


# ----------------------------------------------------------------------
# Structure invariants
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(entries=entries_strategy(), query_list=st.lists(queries, max_size=30))
def test_basic_palmtrie_matches_oracle(entries, query_list):
    trie = BasicPalmtrie.build(entries, KEY_LENGTH)
    for query in query_list:
        assert_same_result(oracle_lookup(entries, query), trie.lookup(query))


@settings(max_examples=60, deadline=None)
@given(
    entries=entries_strategy(),
    query_list=st.lists(queries, max_size=30),
    stride=st.sampled_from([1, 2, 3, 5, 8]),
)
def test_multibit_and_plus_match_oracle(entries, query_list, stride):
    trie = MultibitPalmtrie.build(entries, KEY_LENGTH, stride=stride)
    plus = PalmtriePlus.from_palmtrie(trie)
    for query in query_list:
        expected = oracle_lookup(entries, query)
        assert_same_result(expected, trie.lookup(query))
        assert_same_result(expected, plus.lookup(query))


@settings(max_examples=40, deadline=None)
@given(
    entries=entries_strategy(max_size=25),
    data=st.data(),
    stride=st.sampled_from([1, 3, 4]),
)
def test_insert_delete_roundtrip(entries, data, stride):
    trie = MultibitPalmtrie.build(entries, KEY_LENGTH, stride=stride)
    keys = list({e.key for e in entries})
    to_delete = data.draw(st.lists(st.sampled_from(keys), unique=True))
    for key in to_delete:
        assert trie.delete(key)
        assert not trie.delete(key)  # idempotent
    survivors = [e for e in entries if e.key not in set(to_delete)]
    assert len(trie) == len(survivors)
    for query in data.draw(st.lists(queries, max_size=20)):
        assert_same_result(oracle_lookup(survivors, query), trie.lookup(query))


@settings(max_examples=40, deadline=None)
@given(entries=entries_strategy(max_size=30), query_list=st.lists(queries, max_size=20))
def test_skipping_is_pure_optimization(entries, query_list):
    with_skip = PalmtriePlus.build(entries, KEY_LENGTH, stride=4, subtree_skipping=True)
    without = PalmtriePlus.build(entries, KEY_LENGTH, stride=4, subtree_skipping=False)
    for query in query_list:
        assert_same_result(without.lookup(query), with_skip.lookup(query))


@settings(max_examples=40, deadline=None)
@given(entries=entries_strategy(max_size=30))
def test_insertion_order_irrelevant(entries):
    forward = MultibitPalmtrie.build(entries, KEY_LENGTH, stride=3)
    backward = MultibitPalmtrie.build(list(reversed(entries)), KEY_LENGTH, stride=3)
    for query in range(0, 1 << KEY_LENGTH, 127):
        assert_same_result(forward.lookup(query), backward.lookup(query))


# ----------------------------------------------------------------------
# Serialization, LPM, address formats
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    entries=entries_strategy(max_size=25),
    stride=st.sampled_from([2, 4, 8]),
    query_list=st.lists(queries, max_size=15),
)
def test_serialize_roundtrip_property(entries, stride, query_list):
    from repro.core.serialize import deserialize_plus, serialize_plus

    original = PalmtriePlus.build(entries, KEY_LENGTH, stride=stride)
    restored = deserialize_plus(serialize_plus(original))
    for query in query_list:
        assert_same_result(original.lookup(query), restored.lookup(query))


@settings(max_examples=40, deadline=None)
@given(
    routes=st.lists(
        st.tuples(st.integers(0, 2**16 - 1), st.integers(0, 16)),
        max_size=40,
    ),
    query_list=st.lists(st.integers(0, 2**16 - 1), max_size=25),
    stride=st.sampled_from([1, 3, 6]),
)
def test_poptrie_matches_radix_property(routes, query_list, stride):
    from repro.core.poptrie import Poptrie
    from repro.core.radix import RadixTree

    radix = RadixTree(16)
    poptrie = Poptrie(16, stride=stride)
    for i, (bits, length) in enumerate(routes):
        bits &= (1 << length) - 1 if length else 0
        radix.insert(bits, length, i)
        poptrie.insert(bits, length, i)
    for query in query_list:
        assert poptrie.lookup(query) == radix.lookup_lpm(query)


@given(value=st.integers(0, 2**128 - 1))
def test_ipv6_format_parse_roundtrip(value):
    from repro.acl.ipv6 import format_ipv6, parse_ipv6

    assert parse_ipv6(format_ipv6(value)) == value


@given(value=st.integers(0, 2**48 - 1))
def test_mac_format_parse_roundtrip(value):
    from repro.acl.layer2 import format_mac, parse_mac

    assert parse_mac(format_mac(value)) == value


@given(value=st.integers(0, 2**32 - 1))
def test_ipv4_format_parse_roundtrip(value):
    from repro.acl.ip import format_ipv4, parse_ipv4

    assert parse_ipv4(format_ipv4(value)) == value
