"""Unit tests for ACL analysis (repro.acl.analyzer)."""

from repro.acl.analyzer import (
    equivalent_on_samples,
    find_conflicts,
    find_shadowed,
    remove_redundant,
)
from repro.acl.parser import parse_acl


def _rules(text):
    return parse_acl(text)


class TestShadowing:
    def test_exact_duplicate_is_shadowed(self):
        rules = _rules(
            "permit ip 10.0.0.0/8 any\n"
            "permit ip 10.0.0.0/8 any\n"
        )
        (finding,) = find_shadowed(rules)
        assert finding.shadowed == 1 and finding.by == 0
        assert finding.redundant

    def test_more_specific_after_general(self):
        rules = _rules(
            "permit ip 10.0.0.0/8 any\n"
            "permit ip 10.1.0.0/16 any\n"
        )
        (finding,) = find_shadowed(rules)
        assert finding.shadowed == 1
        assert finding.redundant

    def test_shadowed_with_different_action_not_redundant(self):
        rules = _rules(
            "permit ip 10.0.0.0/8 any\n"
            "deny ip 10.1.0.0/16 any\n"
        )
        (finding,) = find_shadowed(rules)
        assert not finding.redundant  # a likely configuration bug

    def test_general_after_specific_not_shadowed(self):
        rules = _rules(
            "permit ip 10.1.0.0/16 any\n"
            "permit ip 10.0.0.0/8 any\n"
        )
        assert find_shadowed(rules) == []

    def test_port_expansion_must_be_fully_covered(self):
        rules = _rules(
            "permit tcp any any range 1000 1999\n"
            "permit tcp any any range 1200 1300\n"   # inside -> shadowed
            "permit tcp any any range 1900 2100\n"   # straddles -> live
        )
        findings = find_shadowed(rules)
        assert [f.shadowed for f in findings] == [1]

    def test_protocol_wildcard_covers_tcp(self):
        rules = _rules(
            "permit ip any 10.0.0.0/8\n"
            "permit tcp any 10.0.0.0/8\n"
        )
        (finding,) = find_shadowed(rules)
        assert finding.shadowed == 1

    def test_empty_and_single(self):
        assert find_shadowed([]) == []
        assert find_shadowed(_rules("permit ip any any\n")) == []


class TestConflicts:
    def test_partial_overlap_different_actions(self):
        rules = _rules(
            "deny tcp any 10.0.0.0/8 eq 80\n"
            "permit tcp 192.168.0.0/16 any\n"
        )
        (finding,) = find_conflicts(rules)
        assert (finding.winner, finding.loser) == (0, 1)
        assert finding.kind == "correlation"

    def test_specific_exception_is_generalization(self):
        # The classic idiom: permit an exception, then deny the block.
        rules = _rules(
            "permit tcp any 10.0.0.32/27 eq 80\n"
            "deny ip any 10.0.0.0/8\n"
        )
        (finding,) = find_conflicts(rules)
        assert finding.kind == "generalization"
        assert (finding.winner, finding.loser) == (0, 1)

    def test_same_action_overlap_is_fine(self):
        rules = _rules(
            "permit tcp any 10.0.0.0/8\n"
            "permit tcp 192.168.0.0/16 any\n"
        )
        assert find_conflicts(rules) == []

    def test_disjoint_different_actions_fine(self):
        rules = _rules(
            "deny tcp any 10.0.0.0/8\n"
            "permit tcp any 11.0.0.0/8\n"
        )
        assert find_conflicts(rules) == []

    def test_shadowed_rules_not_double_reported(self):
        rules = _rules(
            "permit ip any any\n"
            "deny tcp any 10.0.0.0/8\n"   # fully shadowed, not a "conflict"
        )
        assert find_conflicts(rules) == []
        assert len(find_shadowed(rules)) == 1


class TestRemoveRedundant:
    def test_removes_only_safe_rules(self):
        rules = _rules(
            "permit ip 10.0.0.0/8 any\n"
            "permit ip 10.1.0.0/16 any\n"   # redundant
            "deny ip 10.2.0.0/16 any\n"     # shadowed but different action: keep
        )
        optimized = remove_redundant(rules)
        assert len(optimized) == 2
        assert optimized[0] == rules[0]
        assert optimized[1] == rules[2]

    def test_iterates_to_fixed_point(self):
        rules = _rules(
            "permit ip 10.0.0.0/8 any\n"
            "permit ip 10.1.0.0/16 any\n"
            "permit ip 10.1.1.0/24 any\n"
        )
        assert len(remove_redundant(rules)) == 1

    def test_optimization_preserves_semantics(self):
        rules = _rules(
            "permit udp any eq 53 10.0.0.0/8\n"
            "permit udp any eq 53 10.1.0.0/16\n"
            "deny ip any 10.0.0.0/8\n"
            "permit ip 10.0.0.0/8 any\n"
        )
        optimized = remove_redundant(rules)
        assert len(optimized) < len(rules)
        assert equivalent_on_samples(rules, optimized, samples=800) is None


class TestEquivalence:
    def test_reordered_disjoint_rules_equivalent(self):
        a = _rules("permit tcp any 10.0.0.0/8\ndeny udp any 11.0.0.0/8\n")
        b = _rules("deny udp any 11.0.0.0/8\npermit tcp any 10.0.0.0/8\n")
        assert equivalent_on_samples(a, b, samples=600) is None

    def test_detects_difference(self):
        a = _rules("permit tcp any 10.0.0.0/8\n")
        b = _rules("deny tcp any 10.0.0.0/8\n")
        counterexample = equivalent_on_samples(a, b, samples=600)
        assert counterexample is not None
        # The counterexample really does disagree.
        from repro.acl.compiler import compile_acl

        assert compile_acl(a).action_for(counterexample) is not compile_acl(
            b
        ).action_for(counterexample)

    def test_swapped_overlapping_rules_detected(self):
        a = _rules(
            "deny tcp any 10.0.0.0/8 eq 80\n"
            "permit tcp any 10.0.0.0/8\n"
        )
        b = list(reversed(a))
        assert equivalent_on_samples(a, b, samples=2000) is not None
