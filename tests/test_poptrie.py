"""Unit tests for the Poptrie LPM substrate (repro.core.poptrie)."""

import random

import pytest

from repro.core.poptrie import Poptrie
from repro.core.radix import RadixTree


class TestBasics:
    def test_empty_lookup(self):
        trie = Poptrie(32)
        assert trie.lookup(0x0A000001) is None
        assert len(trie) == 0

    def test_default_route(self):
        trie = Poptrie.build([(0, 0, "default")], 32)
        assert trie.lookup(0) == "default"
        assert trie.lookup(0xFFFFFFFF) == "default"

    def test_longest_prefix_wins(self):
        trie = Poptrie.build(
            [
                (0x0A, 8, "ten-slash-8"),
                (0x0A01, 16, "ten-one"),
                (0x0A0101, 24, "ten-one-one"),
            ],
            32,
        )
        assert trie.lookup(0x0A010105) == "ten-one-one"
        assert trie.lookup(0x0A01FF05) == "ten-one"
        assert trie.lookup(0x0AFFFF05) == "ten-slash-8"
        assert trie.lookup(0x0B000000) is None

    def test_host_route(self):
        trie = Poptrie.build([(0x0A000001, 32, "host")], 32)
        assert trie.lookup(0x0A000001) == "host"
        assert trie.lookup(0x0A000002) is None

    def test_prefix_not_aligned_to_stride(self):
        # /9, /13 etc. cross k=6 chunk boundaries.
        trie = Poptrie.build([(0b101000100, 9, "v")], 32, stride=6)
        base = 0b101000100 << 23
        assert trie.lookup(base) == "v"
        assert trie.lookup(base | 0x7FFFFF) == "v"
        assert trie.lookup(base ^ (1 << 23)) is None

    def test_replace_route(self):
        trie = Poptrie(32)
        trie.insert(0x0A, 8, "old")
        trie.insert(0x0A, 8, "new")
        assert len(trie) == 1
        assert trie.lookup(0x0A000001) == "new"

    def test_delete(self):
        trie = Poptrie(32)
        trie.insert(0x0A, 8, "a")
        trie.insert(0x0A01, 16, "b")
        assert trie.delete(0x0A01, 16)
        assert trie.lookup(0x0A010000) == "a"
        assert not trie.delete(0x0A01, 16)
        assert len(trie) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Poptrie(0)
        with pytest.raises(ValueError):
            Poptrie(32, stride=0)
        with pytest.raises(ValueError):
            Poptrie(32, stride=9)
        trie = Poptrie(32)
        with pytest.raises(ValueError):
            trie.insert(0, 33, "x")
        with pytest.raises(ValueError):
            trie.insert(0b111, 2, "x")


class TestDifferentialAgainstRadix:
    @pytest.mark.parametrize("stride", [1, 4, 6, 8])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_random_route_tables(self, stride, seed):
        rng = random.Random(seed)
        radix = RadixTree(32)
        poptrie = Poptrie(32, stride=stride)
        for i in range(300):
            prefix_len = rng.choice((0, 8, 10, 16, 19, 24, 28, 32))
            prefix_bits = rng.getrandbits(prefix_len) if prefix_len else 0
            radix.insert(prefix_bits, prefix_len, i)
            poptrie.insert(prefix_bits, prefix_len, i)
        poptrie.compile()
        for _ in range(1500):
            key = rng.getrandbits(32)
            assert poptrie.lookup(key) == radix.lookup_lpm(key)

    def test_after_deletions(self):
        rng = random.Random(3)
        routes = []
        radix = RadixTree(24)
        poptrie = Poptrie(24, stride=6)
        for i in range(150):
            prefix_len = rng.randrange(0, 25)
            prefix_bits = rng.getrandbits(prefix_len) if prefix_len else 0
            routes.append((prefix_bits, prefix_len))
            radix.insert(prefix_bits, prefix_len, i)
            poptrie.insert(prefix_bits, prefix_len, i)
        for prefix_bits, prefix_len in routes[::2]:
            assert radix.delete(prefix_bits, prefix_len) == poptrie.delete(
                prefix_bits, prefix_len
            )
        for _ in range(800):
            key = rng.getrandbits(24)
            assert poptrie.lookup(key) == radix.lookup_lpm(key)


class TestCompression:
    def test_leaf_runs_compressed(self):
        # One /8 covers 2**24 addresses but the leaf array stays tiny.
        trie = Poptrie.build([(0x0A, 8, "v")], 32, stride=6)
        assert trie.leaf_count() < 200

    def test_memory_much_smaller_than_radix_model(self):
        rng = random.Random(4)
        routes = [
            (rng.getrandbits(24), 24, i) for i in range(500)
        ]
        poptrie = Poptrie.build(routes, 32, stride=6)
        radix = RadixTree(32)
        for bits, length, value in routes:
            radix.insert(bits, length, value)
        # Radix: ~24 nodes/route at 3 pointers each; Poptrie nodes are
        # two vectors + two bases.
        radix_model = radix.node_count() * (2 * 8 + 4)
        assert poptrie.memory_bytes() < radix_model

    def test_recompile_is_lazy(self):
        trie = Poptrie(32)
        trie.insert(0x0A, 8, "v")
        assert trie.lookup(0x0A000001) == "v"  # compiles on demand
        trie.insert(0x0B, 8, "w")
        assert trie.lookup(0x0B000001) == "w"  # recompiles after update
