"""The frozen struct-of-arrays lookup plane.

The load-bearing property is differential: a :class:`FrozenMatcher`
compiled from a built trie must return *identical* results (``lookup``,
``lookup_all``, ``lookup_batch``) to its source on fuzzed tables and on
ClassBench workloads — same winning entry object, not just the same
priority — because freezing is a representation change, not an
algorithm change.  On top of that: the PLMF wire format round-trips,
corruption is detected, lazy re-freezing after updates stays coherent,
and both batch walks (numpy and pure-python) agree.
"""

from __future__ import annotations

import random

import pytest

from helpers import assert_same_result, oracle_lookup, random_entries, table1_entries

from repro import MATCHER_KINDS, ClassificationEngine, EngineConfig, build_matcher
from repro.core.frozen import FrozenMatcher, FrozenPoptrie, freeze
from repro.core.multibit import MultibitPalmtrie
from repro.core.plus import PalmtriePlus
from repro.core.poptrie import Poptrie
from repro.core.serialize import (
    FormatError,
    deserialize_frozen,
    load_frozen,
    save_frozen,
    serialize_frozen,
)
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey

KEY_LENGTH = 32


def _queries(count: int, seed: int = 0, bits: int = KEY_LENGTH) -> list[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(bits) for _ in range(count)]


def _biased_queries(entries, count: int, seed: int = 0) -> list[int]:
    """Half random, half forced to match some entry (flips don't-care bits)."""
    rng = random.Random(seed)
    queries = []
    for i in range(count):
        if entries and i % 2:
            e = entries[rng.randrange(len(entries))]
            wild = rng.getrandbits(e.key.length) & e.key.mask
            queries.append(e.key.data | wild)
        else:
            queries.append(rng.getrandbits(entries[0].key.length if entries else 16))
    return queries


# ----------------------------------------------------------------------
# Construction and the freeze() dispatcher
# ----------------------------------------------------------------------

class TestConstruction:
    def test_build_classmethod(self):
        entries = table1_entries()
        frozen = FrozenMatcher.build(entries, 8, stride=4)
        assert frozen.name == "frozen"
        assert len(frozen) == len(entries)
        assert frozen.key_length == 8

    def test_freeze_dispatcher_accepts_the_trie_family(self):
        entries = random_entries(20, KEY_LENGTH, seed=1)
        for source in (
            MultibitPalmtrie.build(entries, KEY_LENGTH, stride=4),
            PalmtriePlus.build(entries, KEY_LENGTH, stride=4),
        ):
            frozen = freeze(source)
            assert isinstance(frozen, FrozenMatcher)
            assert len(frozen) == len(entries)

    def test_freeze_poptrie(self):
        pt = Poptrie(key_length=32)
        pt.insert(0b1010, 4, "a")
        assert isinstance(freeze(pt), FrozenPoptrie)

    def test_freeze_rejects_non_trie(self):
        with pytest.raises(TypeError):
            freeze(build_matcher("sorted-list", table1_entries(), 8))

    def test_freeze_of_frozen_is_idempotent(self):
        frozen = FrozenMatcher.build(table1_entries(), 8)
        assert freeze(frozen) is frozen

    def test_registry_and_build_matcher(self):
        assert MATCHER_KINDS["frozen"] is FrozenMatcher
        matcher = build_matcher("frozen", table1_entries(), 8, stride=4)
        assert isinstance(matcher, FrozenMatcher)

    def test_stride_bounds(self):
        with pytest.raises(ValueError):
            FrozenMatcher(8, stride=0)
        with pytest.raises(ValueError):
            FrozenMatcher(8, stride=31)

    def test_empty_table(self):
        frozen = FrozenMatcher.build([], KEY_LENGTH)
        assert len(frozen) == 0
        assert frozen.lookup(123) is None
        assert frozen.lookup_all(123) == []
        assert frozen.lookup_batch([1, 2, 3]) == [None, None, None]


# ----------------------------------------------------------------------
# Differential: frozen vs source vs oracle
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("source_kind", ["palmtrie", "palmtrie-plus"])
class TestDifferentialFuzz:
    def _build(self, source_kind, seed):
        entries = random_entries(50 + 17 * seed, KEY_LENGTH, seed=seed)
        source = build_matcher(source_kind, entries, KEY_LENGTH, stride=4 + seed % 3)
        return entries, source, freeze(source)

    def test_lookup_identical_to_source(self, source_kind, seed):
        entries, source, frozen = self._build(source_kind, seed)
        for query in _biased_queries(entries, 400, seed=seed + 100):
            expected = source.lookup(query)
            got = frozen.lookup(query)
            # identical object, not just the same priority: freezing
            # must preserve the tie winner too
            assert got is expected or (
                got is not None and expected is not None
                and got.priority == expected.priority
                and got.value == expected.value
            )
            assert_same_result(oracle_lookup(entries, query), got)

    def test_lookup_all_identical(self, source_kind, seed):
        entries, source, frozen = self._build(source_kind, seed)
        for query in _biased_queries(entries, 150, seed=seed + 200):
            expected = sorted(
                (e for e in entries if e.key.matches(query)),
                key=lambda e: e.priority, reverse=True,
            )
            got = frozen.lookup_all(query)
            assert [e.priority for e in got] == [e.priority for e in expected]
            assert {(e.priority, e.value) for e in got} == {
                (e.priority, e.value) for e in expected
            }

    def test_lookup_batch_identical(self, source_kind, seed):
        entries, source, frozen = self._build(source_kind, seed)
        queries = _biased_queries(entries, 300, seed=seed + 300)
        scalar = [frozen.lookup(q) for q in queries]
        assert frozen.lookup_batch(queries) == scalar


class TestDifferentialClassBench:
    @pytest.mark.parametrize("profile", ["acl", "fw", "ipc"])
    def test_classbench_workload(self, profile):
        from repro.workloads.classbench import classbench_acl
        from repro.workloads.traffic import pareto_trace

        acl = classbench_acl(profile, 120)
        source = PalmtriePlus.build(acl.entries, acl.layout.length, stride=8)
        frozen = freeze(source)
        queries = pareto_trace(acl.entries, 600)
        expected = [source.lookup(q) for q in queries]
        assert [frozen.lookup(q) for q in queries] == expected
        assert frozen.lookup_batch(queries) == expected


class TestBatchPaths:
    def test_numpy_and_python_walks_agree(self):
        entries = random_entries(60, KEY_LENGTH, seed=7)
        frozen = FrozenMatcher.build(entries, KEY_LENGTH, stride=6)
        queries = _biased_queries(entries, 500, seed=8)
        via_default = frozen.lookup_batch(queries)
        # The private walks now speak leaf indices (what the sharded
        # data plane ships between processes); resolve through
        # _leaf_best to compare with the entry-level surface.
        python_only = frozen._batch_walk_python(list(dict.fromkeys(queries)))
        by_query = dict(zip(dict.fromkeys(queries), python_only))
        best_of = frozen._leaf_best
        assert via_default == [
            best_of[by_query[q]] if by_query[q] >= 0 else None for q in queries
        ]
        assert frozen.lookup_batch_indices(queries) == [by_query[q] for q in queries]

    def test_batch_empty_and_duplicates(self):
        frozen = FrozenMatcher.build(table1_entries(), 8)
        assert frozen.lookup_batch([]) == []
        results = frozen.lookup_batch([0b00010101] * 10)
        assert len(set(id(r) for r in results)) == 1  # deduplicated resolve


# ----------------------------------------------------------------------
# Mutability: lazy re-freeze
# ----------------------------------------------------------------------

class TestLazyRefreeze:
    def test_insert_refreezes_on_next_lookup(self):
        entries = random_entries(20, KEY_LENGTH, seed=20)
        frozen = FrozenMatcher.build(entries, KEY_LENGTH)
        count = frozen.freeze_count
        key = TernaryKey(0, (1 << KEY_LENGTH) - 1, KEY_LENGTH)  # match-all
        frozen.insert(TernaryEntry(key, "new", 10_000))
        assert frozen.lookup(_queries(1, seed=21)[0]).priority == 10_000
        assert frozen.freeze_count == count + 1
        assert len(frozen) == 21

    def test_delete(self):
        entries = random_entries(20, KEY_LENGTH, seed=22)
        frozen = FrozenMatcher.build(entries, KEY_LENGTH)
        victim = entries[5]
        assert frozen.delete(victim.key)
        remaining = [e for e in entries if e is not victim]
        for query in _biased_queries(remaining, 200, seed=23):
            assert_same_result(oracle_lookup(remaining, query), frozen.lookup(query))
        assert not frozen.delete(victim.key)

    def test_entries_roundtrip(self):
        entries = random_entries(15, KEY_LENGTH, seed=24)
        frozen = FrozenMatcher.build(entries, KEY_LENGTH)
        assert {(e.key, e.priority) for e in frozen.entries()} == {
            (e.key, e.priority) for e in entries
        }

    def test_build_freezes_exactly_once(self):
        """The constructor defers the empty first freeze; ``build``
        therefore compiles the plane exactly once."""
        frozen = FrozenMatcher.build(random_entries(10, KEY_LENGTH, seed=25), KEY_LENGTH)
        assert frozen.freeze_count == 1

    def test_fresh_instance_defers_freeze_until_first_read(self):
        frozen = FrozenMatcher(KEY_LENGTH)
        assert frozen.freeze_count == 0
        for entry in random_entries(10, KEY_LENGTH, seed=26):
            frozen.insert(entry)
        assert frozen.freeze_count == 0  # no wasted empty freeze
        frozen.lookup(0)
        assert frozen.freeze_count == 1


# ----------------------------------------------------------------------
# PLMF wire format
# ----------------------------------------------------------------------

class TestSerialization:
    def _frozen(self, seed=30, count=40):
        entries = random_entries(count, KEY_LENGTH, seed=seed)
        return entries, FrozenMatcher.build(entries, KEY_LENGTH, stride=5)

    def test_roundtrip_is_byte_identical(self):
        _, frozen = self._frozen()
        blob = serialize_frozen(frozen)
        assert serialize_frozen(deserialize_frozen(blob)) == blob

    def test_loaded_plane_serves_without_rebuild(self):
        entries, frozen = self._frozen(seed=31)
        loaded = deserialize_frozen(serialize_frozen(frozen))
        assert loaded._source is None  # serves without rebuilding a trie
        for query in _biased_queries(entries, 300, seed=32):
            assert_same_result(frozen.lookup(query), loaded.lookup(query))
        queries = _biased_queries(entries, 100, seed=33)
        assert [e.priority if e else None for e in loaded.lookup_batch(queries)] == [
            e.priority if e else None for e in frozen.lookup_batch(queries)
        ]

    def test_loaded_plane_hydrates_on_insert(self):
        entries, frozen = self._frozen(seed=34, count=12)
        loaded = deserialize_frozen(serialize_frozen(frozen))
        key = TernaryKey(0, (1 << KEY_LENGTH) - 1, KEY_LENGTH)
        loaded.insert(TernaryEntry(key, "late", 99_999))
        assert loaded.lookup(5).priority == 99_999
        assert len(loaded) == 13

    def test_save_load_file(self, tmp_path):
        entries, frozen = self._frozen(seed=35)
        path = tmp_path / "plane.plmf"
        written = save_frozen(frozen, path)
        assert written == path.stat().st_size
        loaded = load_frozen(path)
        for query in _queries(100, seed=36):
            assert_same_result(frozen.lookup(query), loaded.lookup(query))

    def test_corruption_detected(self):
        _, frozen = self._frozen(seed=37)
        blob = serialize_frozen(frozen)
        with pytest.raises(FormatError):
            deserialize_frozen(blob[: len(blob) // 2])  # truncated
        with pytest.raises(FormatError):
            deserialize_frozen(b"XXXX" + blob[4:])  # bad magic
        with pytest.raises(FormatError):
            deserialize_frozen(blob + b"\x00")  # trailing garbage

    def test_memory_model_survives_roundtrip(self):
        _, frozen = self._frozen(seed=38)
        loaded = deserialize_frozen(serialize_frozen(frozen))
        assert loaded.memory_bytes() == frozen.memory_bytes()


# ----------------------------------------------------------------------
# Engine integration (auto_freeze)
# ----------------------------------------------------------------------

class TestEngineAutoFreeze:
    def test_plane_appears_and_serves(self):
        entries = random_entries(30, KEY_LENGTH, seed=40)
        engine = ClassificationEngine(PalmtriePlus.build(entries, KEY_LENGTH, stride=4), EngineConfig(cache_size=16, auto_freeze=True))
        report = engine.report()
        assert report["auto_freeze"] and not report["frozen_plane_active"]
        for query in _biased_queries(entries, 200, seed=41):
            assert_same_result(oracle_lookup(entries, query), engine.lookup(query))
        report = engine.report()
        assert report["frozen_plane_active"] and report["freezes"] == 1

    def test_updates_drop_and_refreeze_plane(self):
        entries = random_entries(25, KEY_LENGTH, seed=42)
        engine = ClassificationEngine(MultibitPalmtrie.build(entries, KEY_LENGTH, stride=4), EngineConfig(cache_size=0, auto_freeze=True))
        queries = _biased_queries(entries, 100, seed=43)
        engine.lookup_batch(queries)
        key = TernaryKey(0, (1 << KEY_LENGTH) - 1, KEY_LENGTH)
        new = TernaryEntry(key, "hot", 50_000)
        engine.insert(new)
        assert not engine.report()["frozen_plane_active"]
        entries = entries + [new]
        for query, got in zip(queries, engine.lookup_batch(queries)):
            assert_same_result(oracle_lookup(entries, query), got)
        report = engine.report()
        assert report["frozen_plane_active"] and report["freezes"] == 2
        assert engine.delete(key)
        entries = entries[:-1]
        for query, got in zip(queries, engine.lookup_batch(queries)):
            assert_same_result(oracle_lookup(entries, query), got)

    def test_unfreezable_matcher_falls_back(self):
        engine = ClassificationEngine(build_matcher("sorted-list", table1_entries(), 8), EngineConfig(cache_size=4, auto_freeze=True))
        for query in range(64):
            assert_same_result(
                oracle_lookup(table1_entries(), query), engine.lookup(query)
            )
        report = engine.report()
        assert not report["frozen_plane_active"] and report["freezes"] == 0


# ----------------------------------------------------------------------
# Instrumentation and introspection
# ----------------------------------------------------------------------

class TestObservability:
    def test_profile_lookup_counts_work(self):
        entries = table1_entries()
        frozen = FrozenMatcher.build(entries, 8, stride=4)
        frozen.stats.reset()
        result = frozen.profile_lookup(0b00010101)
        assert_same_result(oracle_lookup(entries, 0b00010101), result)
        assert frozen.stats.lookups == 1
        assert frozen.stats.node_visits > 0
        assert frozen.stats.key_comparisons > 0

    def test_memory_bytes_positive_and_tracks_arrays(self):
        entries = random_entries(40, KEY_LENGTH, seed=50)
        frozen = FrozenMatcher.build(entries, KEY_LENGTH, stride=6)
        assert frozen.memory_bytes() > 0
        bigger = FrozenMatcher.build(
            random_entries(80, KEY_LENGTH, seed=50), KEY_LENGTH, stride=6
        )
        assert bigger.memory_bytes() > frozen.memory_bytes()


# ----------------------------------------------------------------------
# FrozenPoptrie
# ----------------------------------------------------------------------

class TestFrozenPoptrie:
    def test_matches_source_on_random_prefixes(self):
        rng = random.Random(60)
        pt = Poptrie(key_length=32)
        for i in range(200):
            plen = rng.randrange(1, 25)
            pt.insert(rng.getrandbits(plen), plen, i)
        frozen = freeze(pt)
        for _ in range(2000):
            q = rng.getrandbits(32)
            assert frozen.lookup(q) == pt.lookup(q)

    def test_memory_model_matches_source(self):
        rng = random.Random(61)
        pt = Poptrie(key_length=32)
        for i in range(50):
            plen = rng.randrange(1, 20)
            pt.insert(rng.getrandbits(plen), plen, i)
        assert freeze(pt).memory_bytes() <= pt.memory_bytes() * 2
