"""The sharded multi-process data plane (repro.shard).

The contract under test is the paper's correctness bar carried across
process boundaries: a :class:`ShardedEngine` must return exactly the
verdicts of a single-process :class:`ClassificationEngine` over the
same rules — through policy updates (atomic cross-shard plane swaps)
and through worker death (degrade to the local fallback, then respawn).

Everything here runs on one core; the *scaling* claim is
``benchmarks/bench_shards.py``'s job.
"""

from __future__ import annotations

import os
import random
import signal
import time

import pytest

from helpers import random_entries
from repro.config import EngineConfig
from repro.core.frozen import freeze
from repro.core.plus import PalmtriePlus
from repro.core.serialize import serialize_frozen
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey
from repro.engine import ClassificationEngine
from repro.shard import ShardedEngine, attach_plane, detach_plane, flow_shard, publish_plane

KEY_LENGTH = 128


def _trace(count: int, seed: int) -> list[int]:
    rng = random.Random(seed)
    population = [rng.getrandbits(KEY_LENGTH) for _ in range(max(16, count // 8))]
    return [rng.choice(population) for _ in range(count)]


def _values(entries):
    return [None if e is None else (e.value, e.priority) for e in entries]


@pytest.fixture(scope="module")
def policy():
    entries = random_entries(60, KEY_LENGTH, seed=11)
    return entries


# ----------------------------------------------------------------------
# The shared-memory plane
# ----------------------------------------------------------------------


class TestPlane:
    def test_publish_attach_round_trip(self, policy):
        frozen = freeze(PalmtriePlus.build(policy, KEY_LENGTH, stride=8))
        plane = publish_plane(frozen, stamp=1, epoch=0, generation=0)
        try:
            mapped, shm = attach_plane(plane.name)
            try:
                assert serialize_frozen(mapped) == serialize_frozen(frozen)
                queries = _trace(200, seed=2)
                assert mapped.lookup_batch_indices(queries) == \
                    frozen.lookup_batch_indices(queries)
            finally:
                mapped = None
                detach_plane(shm)
        finally:
            plane.retire()

    def test_attach_unknown_name_raises(self):
        with pytest.raises(FileNotFoundError):
            attach_plane("psm_does_not_exist_xyzzy")

    def test_flow_shard_is_stable_and_balanced(self):
        queries = _trace(4000, seed=3)
        first = [flow_shard(q, 4) for q in queries]
        assert first == [flow_shard(q, 4) for q in queries]
        counts = [first.count(i) for i in range(4)]
        assert all(count > 0 for count in counts)

    @pytest.mark.parametrize("shards", (2, 4, 8))
    def test_flow_shard_spreads_low_bit_constant_traces(self, shards):
        """The RSS hash must avalanche, not truncate: a trace whose low
        header bits are constant (a fixed dst port, say) has to spread
        across every power-of-two shard count within tolerance.  The
        old ``hash(q) % n`` — near-identity for ints — pinned this
        entire trace to ``0x50 % n``."""
        rng = random.Random(29)
        # 4000 distinct flows, all sharing the low byte 0x50 and a
        # constant zero mid-section: only high-order bits vary.
        queries = list({(rng.getrandbits(24) << 8) | 0x50 for _ in range(4000)})
        counts = [0] * shards
        for q in queries:
            counts[flow_shard(q, shards)] += 1
        mean = len(queries) / shards
        assert all(c > 0 for c in counts), counts
        assert max(counts) / mean <= 1.5, counts

    def test_flow_shard_uses_high_limbs_of_wide_keys(self):
        """Queries differing only above bit 64 (the v6 src address end)
        must not collapse onto one shard."""
        rng = random.Random(31)
        low = rng.getrandbits(64)
        queries = [(rng.getrandbits(64) << 64) | low for _ in range(2000)]
        counts = [0] * 4
        for q in queries:
            counts[flow_shard(q, 4)] += 1
        mean = len(queries) / 4
        assert max(counts) / mean <= 1.5, counts


# ----------------------------------------------------------------------
# Cross-process differential
# ----------------------------------------------------------------------


class TestShardedDifferential:
    def test_verdicts_match_single_process_with_midtrace_update(self, policy):
        queries = _trace(10_000, seed=7)
        matcher_a = PalmtriePlus.build(policy, KEY_LENGTH, stride=8)
        matcher_b = PalmtriePlus.build(policy, KEY_LENGTH, stride=8)
        config = EngineConfig(cache_size=512, shards=2)
        single = ClassificationEngine(matcher_a, config.replace(shards=0))
        override = TernaryEntry(
            key=TernaryKey.wildcard(KEY_LENGTH), value=999, priority=10_000
        )
        with ShardedEngine(matcher_b, config) as sharded:
            half = len(queries) // 2
            assert _values(sharded.lookup_batch(queries[:half])) == \
                _values(single.lookup_batch(queries[:half]))
            # mid-trace transactional update: a match-all override that
            # must win everywhere, in both engines, atomically
            sharded.apply_updates([("insert", override)])
            single.apply_updates([("insert", override)])
            got = sharded.lookup_batch(queries[half:])
            want = single.lookup_batch(queries[half:])
            assert _values(got) == _values(want)
            assert all(e is not None and e.value == 999 for e in got)
            assert sharded.health == "ok"
            assert sharded.shards_alive == 2

    def test_adaptive_layout_and_plan_cross_process(self, policy):
        """Hot layout + variable StridePlan survive the PLMS hop: the
        workers serve from planes compiled under both knobs, and the
        verdicts still match a plain single-process engine."""
        from repro.core.frozen import StridePlan

        queries = _trace(4_000, seed=23)
        plan = StridePlan(8, 6, ((2, 4), (300, 3)))
        config = EngineConfig(
            cache_size=0,
            shards=2,
            frozen_layout="hot",
            stride_plan=plan,
        )
        matcher_a = PalmtriePlus.build(policy, KEY_LENGTH, stride=8)
        matcher_b = PalmtriePlus.build(policy, KEY_LENGTH, stride=8)
        single = ClassificationEngine(
            matcher_a, EngineConfig(cache_size=0)
        )
        with ShardedEngine(matcher_b, config) as sharded:
            assert _values(sharded.lookup_batch(queries)) == \
                _values(single.lookup_batch(queries))
            assert sharded.health == "ok"

    def test_replay_counts_match_lookup_batch(self, policy):
        from repro.workloads.traffic import uniform_traffic

        queries = uniform_traffic(policy, 4000, seed=9)
        matcher = PalmtriePlus.build(policy, KEY_LENGTH, stride=8)
        single = ClassificationEngine(
            PalmtriePlus.build(policy, KEY_LENGTH, stride=8)
        )
        expected: dict = {}
        misses = 0
        for entry in single.lookup_batch(queries):
            if entry is None:
                misses += 1
            else:
                expected[entry.value] = expected.get(entry.value, 0) + 1
        assert expected, "trace must actually match rules"
        with ShardedEngine(matcher, EngineConfig(shards=2)) as sharded:
            result = sharded.replay(queries, chunk_size=512)
        assert result["queries"] == len(queries)
        assert result["verdicts"] == expected
        assert result["missed"] == misses
        assert result["matched"] == len(queries) - misses

    def test_scalar_lookup_and_delegated_surface(self, policy):
        matcher = PalmtriePlus.build(policy, KEY_LENGTH, stride=8)
        reference = ClassificationEngine(
            PalmtriePlus.build(policy, KEY_LENGTH, stride=8)
        )
        queries = _trace(100, seed=13)
        with ShardedEngine(matcher, EngineConfig(shards=1)) as sharded:
            for query in queries:
                got, want = sharded.lookup(query), reference.lookup(query)
                assert _values([got]) == _values([want])
            report = sharded.report()
            assert report["shards"]["count"] == 1
            assert report["shards"]["alive"] == 1
            # the inner-engine surface stays reachable (stats, epoch...)
            assert sharded.epoch == 0
            assert sharded.stats.lookups >= len(queries)


# ----------------------------------------------------------------------
# Startup recovery through the sharded facade
# ----------------------------------------------------------------------


class TestShardedCheckpointRecovery:
    def test_from_checkpoint_matches_in_process_recovery(self, policy, tmp_path):
        """``ShardedEngine.from_checkpoint`` is the same recovery
        contract as the in-process engine's, just fronted by workers:
        verdicts over the restored policy must be a bit-identical
        differential, and the restore/rebuild provenance counters must
        survive the facade (they used to be discarded, so a recovered
        sharded engine reported ``checkpoint_restores == 0``)."""
        queries = _trace(3000, seed=37)
        path = str(tmp_path / "policy.plmc")
        source = ClassificationEngine(
            PalmtriePlus.build(policy, KEY_LENGTH, stride=8)
        )
        source.checkpoint(path)

        def rebuild():
            # A deliberately wrong fallback policy: if recovery silently
            # takes the rebuild path, the differential below fails loud.
            return PalmtriePlus.build(policy[:1], KEY_LENGTH, stride=8)

        single = ClassificationEngine.from_checkpoint(path, rebuild=rebuild)
        config = EngineConfig(cache_size=256, shards=2)
        with ShardedEngine.from_checkpoint(
            path, rebuild=rebuild, config=config
        ) as sharded:
            assert _values(sharded.lookup_batch(queries)) == \
                _values(single.lookup_batch(queries))
            report = sharded.report()
            assert report["checkpoint_restores"] == 1
            assert report["checkpoint_rebuilds"] == 0
            assert report["shards"]["count"] == 2
            # delegated surface agrees with the report
            assert sharded.checkpoint_restores == 1
            assert sharded.epoch == single.epoch
            assert sharded.health == "ok"

    def test_from_checkpoint_rebuild_fallback_still_exact(self, policy, tmp_path):
        """A garbled checkpoint must fall back to ``rebuild`` (counted
        as a rebuild, not a restore) and the workers must serve the
        rebuilt policy exactly."""
        path = tmp_path / "garbled.plmc"
        path.write_bytes(b"not a checkpoint")

        def rebuild():
            return PalmtriePlus.build(policy, KEY_LENGTH, stride=8)

        queries = _trace(1000, seed=41)
        single = ClassificationEngine(
            PalmtriePlus.build(policy, KEY_LENGTH, stride=8)
        )
        with ShardedEngine.from_checkpoint(
            str(path), rebuild=rebuild, config=EngineConfig(shards=2)
        ) as sharded:
            assert _values(sharded.lookup_batch(queries)) == \
                _values(single.lookup_batch(queries))
            report = sharded.report()
            assert report["checkpoint_restores"] == 0
            assert report["checkpoint_rebuilds"] == 1
            assert sharded.health == "ok"


# ----------------------------------------------------------------------
# Worker death: degrade, then respawn
# ----------------------------------------------------------------------


class TestWorkerRecovery:
    def test_sigkill_degrades_then_respawns_with_exact_verdicts(self, policy):
        queries = _trace(3000, seed=17)
        matcher = PalmtriePlus.build(policy, KEY_LENGTH, stride=8)
        single = ClassificationEngine(
            PalmtriePlus.build(policy, KEY_LENGTH, stride=8)
        )
        config = EngineConfig(cache_size=256, shards=2, shard_timeout=10.0)
        with ShardedEngine(matcher, config) as sharded:
            third = len(queries) // 3
            assert _values(sharded.lookup_batch(queries[:third])) == \
                _values(single.lookup_batch(queries[:third]))

            victim = sharded._shards[0]
            os.kill(victim.proc.pid, signal.SIGKILL)
            victim.proc.join(timeout=10)

            # the burst straddling the death must still be exact
            got = sharded.lookup_batch(queries[third : 2 * third])
            want = single.lookup_batch(queries[third : 2 * third])
            assert _values(got) == _values(want)
            assert sharded.worker_deaths >= 1
            deadline = time.monotonic() + 10.0
            while sharded.shards_alive < 2 and time.monotonic() < deadline:
                sharded.lookup_batch(queries[:64])  # respawn happens lazily
            assert sharded.shards_alive == 2

            # after recovery, still exact
            assert _values(sharded.lookup_batch(queries[2 * third :])) == \
                _values(single.lookup_batch(queries[2 * third :]))
            guard = sharded.resilience
            assert guard is not None
            assert guard.faults.get("shard_worker", 0) >= 1

    def test_worker_survives_malformed_messages(self, policy):
        """Garbage on the control socket is a bad *request*, not a dead
        worker: the worker answers ``("err", ...)`` and keeps serving.
        (The unpack used to sit outside the guarded block, so a
        non-tuple message killed the process.)"""
        queries = _trace(500, seed=19)
        matcher = PalmtriePlus.build(policy, KEY_LENGTH, stride=8)
        single = ClassificationEngine(
            PalmtriePlus.build(policy, KEY_LENGTH, stride=8)
        )
        with ShardedEngine(matcher, EngineConfig(shards=1)) as sharded:
            handle = sharded._shards[0]
            garbage = (
                42,                       # not a tuple at all
                (),                       # empty tuple
                ("batch",),               # right op, wrong arity
                ("no-such-op", 1, 2),     # unknown op
                (None, "x"),              # unhashable-op shapes
            )
            for msg in garbage:
                handle.conn.send(msg)
                kind, site, detail = handle.conn.recv()
                assert kind == "err", (msg, kind, detail)
                assert site in ("shard_protocol", "shard_batch"), (msg, site)
            # still alive and still exact after every insult
            handle.conn.send(("ping", "still-there"))
            assert handle.conn.recv() == ("ok", "still-there")
            assert _values(sharded.lookup_batch(queries)) == \
                _values(single.lookup_batch(queries))
            assert sharded.shards_alive == 1
            assert sharded.health == "ok"

    def test_close_is_idempotent_and_kills_workers(self, policy):
        matcher = PalmtriePlus.build(policy, KEY_LENGTH, stride=8)
        sharded = ShardedEngine(matcher, EngineConfig(shards=2))
        pids = [handle.proc.pid for handle in sharded._shards]
        sharded.close()
        sharded.close()  # second close is a no-op
        for pid in pids:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    break
                time.sleep(0.05)
            else:
                pytest.fail(f"worker {pid} still alive after close()")
