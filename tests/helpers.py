"""Shared test helpers: tiny table builders and oracles."""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey

#: the paper's Table 1 dataset: (key, value, priority)
TABLE1_ROWS = (
    ("011*1000", 1, 6),
    ("1*0***10", 2, 8),
    ("0001****", 3, 9),
    ("10110011", 4, 3),
    ("0*1101**", 5, 7),
    ("1110****", 6, 4),
    ("010010**", 7, 5),
    ("01110***", 8, 2),
    ("1*******", 9, 1),
)


def table1_entries() -> list[TernaryEntry]:
    return [
        TernaryEntry(TernaryKey.from_string(key), value, priority)
        for key, value, priority in TABLE1_ROWS
    ]


def random_entries(
    count: int, key_length: int, seed: int = 0, priority_range: int = 1000
) -> list[TernaryEntry]:
    """Uniformly random ternary tables (dense in the §3.3 sense)."""
    rng = random.Random(seed)
    return [
        TernaryEntry(
            TernaryKey.from_string("".join(rng.choice("01*") for _ in range(key_length))),
            i,
            rng.randrange(priority_range),
        )
        for i in range(count)
    ]


def oracle_lookup(entries: Sequence[TernaryEntry], query: int) -> TernaryEntry | None:
    """Reference semantics: highest-priority matching entry."""
    best = None
    for entry in entries:
        if entry.key.matches(query) and (best is None or entry.priority > best.priority):
            best = entry
    return best


def assert_same_result(expected: TernaryEntry | None, got: TernaryEntry | None) -> None:
    """Matchers must agree on the winning *priority* (ties on priority may
    legitimately return either tied entry)."""
    expected_priority = expected.priority if expected is not None else None
    got_priority = got.priority if got is not None else None
    assert expected_priority == got_priority, (
        f"expected priority {expected_priority} "
        f"(value {getattr(expected, 'value', None)}), "
        f"got {got_priority} (value {getattr(got, 'value', None)})"
    )
