"""Unit tests for the vectorized matcher (repro.baselines.vectorized)."""

import random

import pytest

from helpers import assert_same_result, oracle_lookup, random_entries, table1_entries
from repro.baselines.vectorized import VectorizedMatcher
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey


class TestCorrectness:
    def test_table1(self):
        entries = table1_entries()
        matcher = VectorizedMatcher.build(entries, 8)
        for query in range(256):
            assert_same_result(oracle_lookup(entries, query), matcher.lookup(query))

    def test_random_16bit(self):
        entries = random_entries(90, 16, seed=201)
        matcher = VectorizedMatcher.build(entries, 16)
        for query in range(0, 1 << 16, 157):
            assert_same_result(oracle_lookup(entries, query), matcher.lookup(query))

    def test_128bit_keys_multiple_lanes(self):
        from repro.workloads.campus import campus_acl
        from repro.workloads.traffic import uniform_traffic
        from repro.baselines.sorted_list import SortedListMatcher

        acl = campus_acl(1)
        matcher = VectorizedMatcher.build(acl.entries, 128)
        oracle = SortedListMatcher.build(acl.entries, 128)
        for query in uniform_traffic(acl.entries, 300):
            assert_same_result(oracle.lookup(query), matcher.lookup(query))

    def test_odd_key_length(self):
        entries = random_entries(40, 70, seed=202)  # 70 bits -> 2 lanes, partial
        matcher = VectorizedMatcher.build(entries, 70)
        rng = random.Random(202)
        for _ in range(300):
            query = rng.getrandbits(70)
            assert_same_result(oracle_lookup(entries, query), matcher.lookup(query))


class TestBatch:
    def test_batch_matches_scalar(self):
        entries = table1_entries()
        matcher = VectorizedMatcher.build(entries, 8)
        queries = list(range(256))
        batch = matcher.lookup_batch(queries)
        for query, got in zip(queries, batch):
            expected = matcher.lookup(query)
            assert (expected and expected.priority) == (got and got.priority)

    def test_batch_indices(self):
        entries = table1_entries()
        matcher = VectorizedMatcher.build(entries, 8)
        indices = matcher.lookup_batch_indices([0b01110101, 0b00100000])
        assert entries[indices[0]].value == 5
        assert indices[1] == -1

    def test_empty_batch(self):
        matcher = VectorizedMatcher.build(table1_entries(), 8)
        assert matcher.lookup_batch([]) == []

    def test_empty_table(self):
        matcher = VectorizedMatcher(8)
        assert matcher.lookup(5) is None
        assert matcher.lookup_batch([1, 2]) == [None, None]


class TestMaintenance:
    def test_incremental_insert(self):
        entries = table1_entries()
        matcher = VectorizedMatcher(8)
        for entry in entries[:4]:
            matcher.insert(entry)
        assert matcher.lookup(0b00010101).value == 3
        for entry in entries[4:]:
            matcher.insert(entry)
        assert matcher.lookup(0b01110101).value == 5

    def test_delete(self):
        matcher = VectorizedMatcher.build(table1_entries(), 8)
        assert matcher.delete(TernaryKey.from_string("0*1101**"))
        assert matcher.lookup(0b01110101).value == 8
        assert not matcher.delete(TernaryKey.from_string("00000000"))

    def test_key_length_check(self):
        matcher = VectorizedMatcher(16)
        with pytest.raises(ValueError, match="key length"):
            matcher.insert(TernaryEntry(TernaryKey.wildcard(8), 0, 1))

    def test_memory_model(self):
        matcher = VectorizedMatcher.build(table1_entries(), 8)
        # 9 entries x 1 lane x 8 bytes x 2 arrays + 9 x 8 priorities.
        assert matcher.memory_bytes() == 9 * 8 * 2 + 9 * 8

    def test_work_model_is_full_scan(self):
        matcher = VectorizedMatcher.build(table1_entries(), 8)
        matcher.stats.reset()
        matcher.profile_lookup(0)
        assert matcher.stats.key_comparisons == 9


class TestSpeedSanity:
    def test_batch_faster_than_scalar_python(self):
        """The point of the engine: one vectorized pass beats N object
        scans (sanity check with a generous margin, not a benchmark)."""
        import time

        from repro.baselines.sorted_list import SortedListMatcher
        from repro.workloads.campus import campus_acl
        from repro.workloads.traffic import uniform_traffic

        acl = campus_acl(3)
        queries = uniform_traffic(acl.entries, 400)
        scalar = SortedListMatcher.build(acl.entries, 128)
        vector = VectorizedMatcher.build(acl.entries, 128)
        start = time.perf_counter()
        for query in queries:
            scalar.lookup(query)
        scalar_time = time.perf_counter() - start
        start = time.perf_counter()
        vector.lookup_batch(queries)
        vector_time = time.perf_counter() - start
        assert vector_time < scalar_time
