"""Smoke tests for the experiment drivers (repro.bench.experiments).

Each driver runs end to end at a micro scale and must emit the rows the
paper's artifact would.  Kept tiny — the real sizes come from the CLI
at the REPRO_SCALE presets; these tests guard the plumbing.
"""

from repro.bench.experiments import (
    fig07_optimizations,
    fig08_stride,
    fig09_memory,
    fig10_lookup,
    fig11_build,
    ipv6_keylength,
    table4_classbench_lookup,
    table5_classbench_build,
)
from repro.bench.scale import Scale

MICRO = Scale(
    name="micro",
    campus_qs=(0, 1),
    campus_qs_slow=(0,),
    classbench_sizes=(40,),
    classbench_sizes_slow=(40,),
    query_count=40,
    min_duration=0.005,
    samples=1,
)


def test_fig07_micro():
    text = fig07_optimizations(MICRO).render()
    assert "D_0" in text and "D_1" in text
    assert "plus8" in text


def test_fig08_micro():
    text = fig08_stride(MICRO, strides=(1, 4, 8)).render()
    assert "k=1" in text and "k=8" in text


def test_fig09_micro():
    text = fig09_memory(MICRO).render()
    assert "palmtrie8" in text
    assert "log-scale view" in text


def test_fig10_micro():
    text = fig10_lookup(MICRO).render()
    assert "uniform" in text and "scan" in text
    assert "modeled Mlps" in text
    # D_1 is outside the slow list: the DPDK column must show N/A there.
    assert "N/A" in text


def test_fig11_micro():
    text = fig11_build(MICRO).render()
    assert "compile" in text
    assert "build-time series" in text


def test_table4_micro():
    text = table4_classbench_lookup(MICRO).render()
    for label in ("ACL40", "FW40", "IPC40"):
        assert label in text


def test_table5_micro():
    text = table5_classbench_build(MICRO).render()
    assert "efficuts" in text and "plus8" in text


def test_ipv6_micro():
    text = ipv6_keylength(MICRO).render()
    assert "mem512" in text
    assert "+1" in text or "+2" in text  # memory growth percentage


def test_run_experiment_appends_timing():
    # run_experiment reads the env scale; call the cheapest driver via
    # the registry only for the error path (timing suffix checked here
    # through a direct micro call instead).
    table = fig09_memory(MICRO)
    assert "Figure 9" in table.render()
