"""Unit tests for key layouts (repro.acl.layout)."""

import pytest

from repro.acl.layout import (
    LAYOUT_V4,
    LAYOUT_V6,
    TCP_ACK,
    TCP_RST,
    TCP_SYN,
    Field,
    KeyLayout,
)
from repro.core.ternary import TernaryKey


class TestLayoutDefinition:
    def test_v4_is_128_bits(self):
        assert LAYOUT_V4.length == 128

    def test_v6_is_512_bits(self):
        assert LAYOUT_V6.length == 512

    def test_v4_field_offsets(self):
        # DESIGN.md §4 layout, msb first.
        assert LAYOUT_V4.offset("src_ip") == 96
        assert LAYOUT_V4.offset("dst_ip") == 64
        assert LAYOUT_V4.offset("proto") == 56
        assert LAYOUT_V4.offset("src_port") == 40
        assert LAYOUT_V4.offset("dst_port") == 24
        assert LAYOUT_V4.offset("tcp_flags") == 16

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            KeyLayout([Field("a", 4), Field("a", 4)])

    def test_overflowing_fields_rejected(self):
        with pytest.raises(ValueError, match="fields need"):
            KeyLayout([Field("a", 8)], total_length=4)

    def test_implicit_total_length(self):
        layout = KeyLayout([Field("a", 3), Field("b", 5)])
        assert layout.length == 8
        assert layout.offset("a") == 5


class TestPackQuery:
    def test_pack_and_unpack(self):
        query = LAYOUT_V4.pack_query(
            src_ip=0x0A000001,
            dst_ip=0xC0000201,
            proto=6,
            src_port=12345,
            dst_port=443,
            tcp_flags=TCP_ACK,
        )
        fields = LAYOUT_V4.unpack_query(query)
        assert fields["src_ip"] == 0x0A000001
        assert fields["dst_ip"] == 0xC0000201
        assert fields["proto"] == 6
        assert fields["src_port"] == 12345
        assert fields["dst_port"] == 443
        assert fields["tcp_flags"] == TCP_ACK

    def test_unknown_field(self):
        with pytest.raises(ValueError, match="unknown field"):
            LAYOUT_V4.pack_query(bogus=1)

    def test_value_too_large(self):
        with pytest.raises(ValueError, match="does not fit"):
            LAYOUT_V4.pack_query(proto=256)

    def test_unmentioned_fields_zero(self):
        assert LAYOUT_V4.pack_query() == 0


class TestPackKey:
    def test_unconstrained_fields_are_dont_care(self):
        key = LAYOUT_V4.pack_key(proto=TernaryKey.exact(6, 8))
        assert key.length == 128
        # Every bit except the proto field is '*'.
        assert key.wildcard_count == 120
        assert LAYOUT_V4.field_key(key, "proto").to_string() == "00000110"

    def test_field_width_mismatch(self):
        with pytest.raises(ValueError, match="bits"):
            LAYOUT_V4.pack_key(proto=TernaryKey.exact(6, 16))

    def test_unknown_field(self):
        with pytest.raises(ValueError, match="unknown field"):
            LAYOUT_V4.pack_key(bogus=TernaryKey.exact(0, 8))

    def test_matches_packed_query(self):
        key = LAYOUT_V4.pack_key(
            src_ip=TernaryKey.from_prefix(0x0A, 8, 32),
            tcp_flags=TernaryKey.from_string("***1****"),
        )
        ack_query = LAYOUT_V4.pack_query(src_ip=0x0A123456, tcp_flags=TCP_ACK)
        syn_query = LAYOUT_V4.pack_query(src_ip=0x0A123456, tcp_flags=TCP_SYN)
        assert key.matches(ack_query)
        assert not key.matches(syn_query)

    def test_field_key_length_check(self):
        with pytest.raises(ValueError, match="key length"):
            LAYOUT_V4.field_key(TernaryKey.wildcard(8), "proto")


class TestTcpFlagConstants:
    def test_established_bits(self):
        # §3.1: established = ACK (***1****) or RST (*****1**).
        assert TernaryKey.from_string("***1****").matches(TCP_ACK)
        assert TernaryKey.from_string("*****1**").matches(TCP_RST)
        assert TCP_ACK == 0x10 and TCP_RST == 0x04
