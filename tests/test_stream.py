"""The streaming data plane: sources, backpressure, and the gates.

Three load-bearing properties:

* backpressure counters are *exact arithmetic* over burst sizes, queue
  capacity and the service quantum — a seeded run reproduces its
  drop/shed/block counts to the packet;
* a scenario replayed from the same seed yields the identical verdict
  stream (the registry's determinism contract);
* streaming through the bounded-queue pipeline answers every packet
  exactly as flat batch replay does — for every matcher kind, and for
  every registered scenario including mid-stream rule churn.
"""

from __future__ import annotations

import random

import pytest

from helpers import random_entries

from repro import MATCHER_KINDS, ClassificationEngine, EngineConfig, build_matcher
from repro.obs.metrics import MetricsRegistry
from repro.stream import (
    DROPPED,
    POLICIES,
    PcapSource,
    RateShapedSource,
    ScenarioSource,
    StreamPipeline,
    TraceSource,
    batch_replay,
)
from repro.workloads import churn_applier, get_scenario, scenario_names

KEY_LENGTH = 16


def _queries(count: int, seed: int = 11) -> list[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(KEY_LENGTH) for _ in range(count)]


def _engine(seed: int = 3, cache: int = 64) -> tuple[ClassificationEngine, list]:
    entries = random_entries(60, KEY_LENGTH, seed=seed)
    matcher = build_matcher("palmtrie-plus", entries, KEY_LENGTH)
    return ClassificationEngine(matcher, EngineConfig(cache_size=cache)), entries


def _signature(verdicts) -> list:
    return [
        "DROPPED" if v is DROPPED else (None if v is None else (v.priority, v.value))
        for v in verdicts
    ]


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------

class TestSources:
    def test_trace_source_chops_fixed_bursts(self):
        src = TraceSource(list(range(10)), KEY_LENGTH, burst_size=4)
        assert [list(b) for b in src.bursts()] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert list(src) == list(range(10))  # repeatable flatten
        assert list(src) == list(range(10))
        assert len(src) == 10

    def test_trace_source_rejects_bad_burst(self):
        with pytest.raises(ValueError):
            TraceSource([], KEY_LENGTH, burst_size=0)

    def test_rate_shaped_source_regroups(self):
        inner = TraceSource(list(range(10)), KEY_LENGTH, burst_size=3)
        shaped = RateShapedSource(inner, rate=4)
        assert [list(b) for b in shaped.bursts()] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert shaped.key_length == KEY_LENGTH

    def test_rate_shaped_needs_key_length_for_plain_iterables(self):
        with pytest.raises(ValueError):
            RateShapedSource([1, 2, 3], rate=2)
        shaped = RateShapedSource([1, 2, 3], rate=2, key_length=8)
        assert [list(b) for b in shaped.bursts()] == [[1, 2], [3]]

    def test_pcap_source_groups_by_timestamp(self, tmp_path):
        from repro.packet.codec import encode_packet
        from repro.packet.headers import PROTO_TCP, PacketHeader
        from repro.packet.pcap import LINKTYPE_RAW, PcapPacket, write_pcap
        from repro.acl.layout import LAYOUT_V4

        path = str(tmp_path / "t.pcap")
        headers = [PacketHeader(1, 2, PROTO_TCP, 3, 4, 0x02) for _ in range(5)]
        stamps = [1.0, 1.0, 1.0, 2.0, 2.0]
        write_pcap(
            path,
            [PcapPacket(ts, encode_packet(h)) for ts, h in zip(stamps, headers)],
            linktype=LINKTYPE_RAW,
        )
        src = PcapSource(path, LAYOUT_V4)
        sizes = [len(b) for b in src.bursts()]
        assert sizes == [3, 2]
        assert src.decode_errors == 0
        assert src.key_length == 128

    def test_scenario_source_is_deterministic(self):
        a = ScenarioSource("scan-churn", seed=7, packets=500)
        b = ScenarioSource("scan-churn", seed=7, packets=500)
        assert [list(x) for x in a.bursts()] == [list(x) for x in b.bursts()]
        assert a._churn == b._churn
        assert len(a) == 500
        c = ScenarioSource("scan-churn", seed=8, packets=500)
        assert [list(x) for x in a.bursts()] != [list(x) for x in c.bursts()]


# ----------------------------------------------------------------------
# Backpressure: exact arithmetic under a seeded burst
# ----------------------------------------------------------------------

class TestBackpressureSemantics:
    """100 packets in 4 bursts of 25, queue of 10, 5 served/interval.

    The fates are pure arithmetic: burst 1 admits 10 (queue empty) and
    overflows 15; 5 are then served, so every later burst admits 5 and
    overflows 20; the final flush serves the last 5.  Totals: 25
    admitted+served, 75 dropped/shed.  Block admits everything.
    """

    BURSTS = 4
    BURST = 25
    OVERFLOW = 75
    ADMITTED = 25

    def _run(self, policy):
        engine, _ = self._fresh()
        pipe = StreamPipeline(
            engine, policy=policy, max_inflight=10, batch_max=5, service_quantum=5
        )
        queries = _queries(self.BURSTS * self.BURST, seed=21)
        source = TraceSource(queries, KEY_LENGTH, burst_size=self.BURST)
        return pipe.run(source, collect_verdicts=True), queries

    def _fresh(self):
        return _engine(seed=9)[0], None

    def test_drop_counters_exact(self):
        report, queries = self._run("drop")
        assert report.offered == 100
        assert report.admitted == self.ADMITTED
        assert report.served == self.ADMITTED
        assert report.dropped == self.OVERFLOW
        assert report.shed == 0
        assert report.blocked_events == 0
        assert report.drop_rate == pytest.approx(0.75)
        assert report.verdicts.count(DROPPED) == self.OVERFLOW

    def test_shed_counters_exact(self):
        report, _ = self._run("shed")
        assert report.shed == self.OVERFLOW
        assert report.dropped == 0
        assert report.served == self.ADMITTED
        # shed packets were answered: fail-closed None, never DROPPED
        assert report.verdicts.count(None) >= self.OVERFLOW
        assert DROPPED not in report.verdicts

    def test_block_serves_everything(self):
        report, _ = self._run("block")
        assert report.served == report.offered == 100
        assert report.dropped == 0 and report.shed == 0
        assert report.blocked_events > 0
        assert report.max_backlog <= 10

    def test_same_seed_same_counters(self):
        first, _ = self._run("shed")
        second, _ = self._run("shed")
        assert first.to_dict()["shed"] == second.to_dict()["shed"]
        assert _signature(first.verdicts) == _signature(second.verdicts)

    def test_served_packets_match_batch_replay_despite_overflow(self):
        # The packets that *were* served answer exactly as batch replay.
        report, queries = self._run("drop")
        reference = batch_replay(
            self._fresh()[0], TraceSource(queries, KEY_LENGTH, burst_size=self.BURST)
        )
        for index, verdict in enumerate(report.verdicts):
            if verdict is not DROPPED:
                assert _signature([verdict]) == _signature([reference[index]])


class TestPipelineValidation:
    def test_rejects_unknown_policy(self):
        engine, _ = _engine()
        with pytest.raises(ValueError, match="policy"):
            StreamPipeline(engine, policy="spill")

    def test_rejects_bad_bounds(self):
        engine, _ = _engine()
        with pytest.raises(ValueError):
            StreamPipeline(engine, max_inflight=0)
        with pytest.raises(ValueError):
            StreamPipeline(engine, batch_max=0)
        with pytest.raises(ValueError):
            StreamPipeline(engine, service_quantum=0)
        with pytest.raises(ValueError):
            StreamPipeline(engine, flow_buckets=0)

    def test_rejects_non_engine(self):
        with pytest.raises(TypeError):
            StreamPipeline(object())

    def test_policies_tuple_is_the_contract(self):
        assert POLICIES == ("block", "drop", "shed")


# ----------------------------------------------------------------------
# Differential: streaming == batch for every matcher kind
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kind", sorted(MATCHER_KINDS))
def test_streaming_matches_batch_every_kind(kind):
    entries = random_entries(60, KEY_LENGTH, seed=3)
    queries = _queries(400, seed=5)

    def fresh():
        return ClassificationEngine(
            build_matcher(kind, entries, KEY_LENGTH), EngineConfig(cache_size=64)
        )

    pipe = StreamPipeline(fresh(), policy="block", max_inflight=64, batch_max=32)
    streamed = pipe.run(
        TraceSource(queries, KEY_LENGTH, burst_size=48), collect_verdicts=True
    )
    reference = batch_replay(fresh(), TraceSource(queries, KEY_LENGTH, burst_size=48))
    assert streamed.served == len(queries)
    assert _signature(streamed.verdicts) == _signature(reference)


# ----------------------------------------------------------------------
# Scenarios: deterministic replay + streaming == batch under churn
# ----------------------------------------------------------------------

SCENARIO_PACKETS = 640


def _scenario_stream(name, seed, policy="block"):
    source = ScenarioSource(name, seed=seed, packets=SCENARIO_PACKETS)
    compiled = source.compiled
    engine = ClassificationEngine(
        build_matcher("palmtrie-plus", compiled.entries, compiled.layout.length),
        EngineConfig(cache_size=256),
    )
    pipe = StreamPipeline(engine, policy=policy, max_inflight=1024)
    report = pipe.run(
        source, collect_verdicts=True, on_burst=churn_applier(source, engine)
    )
    return report, compiled


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_replay_is_deterministic(name):
    first, _ = _scenario_stream(name, seed=13)
    second, _ = _scenario_stream(name, seed=13)
    assert _signature(first.verdicts) == _signature(second.verdicts)
    assert first.churn_transactions == second.churn_transactions


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_streaming_matches_batch(name):
    streamed, compiled = _scenario_stream(name, seed=13)
    source = ScenarioSource(name, seed=13, packets=SCENARIO_PACKETS)
    engine = ClassificationEngine(
        build_matcher("palmtrie-plus", compiled.entries, compiled.layout.length),
        EngineConfig(cache_size=256),
    )
    reference = batch_replay(engine, source, on_burst=churn_applier(source, engine))
    assert _signature(streamed.verdicts) == _signature(reference)


def test_scan_churn_actually_churns():
    source = ScenarioSource("scan-churn", seed=13, packets=SCENARIO_PACKETS)
    assert source._churn, "scan-churn must schedule rule updates"
    report, _ = _scenario_stream("scan-churn", seed=13)
    assert report.churn_transactions == len(source._churn)


def test_attack_profile_sheds_deterministically():
    scenario = get_scenario("scan-churn")
    assert scenario.attack

    # Enough bursts for the 16/interval backlog growth to fill the
    # 256-packet queue (overload starts at burst 17).
    packets = 2_000

    def run():
        source = ScenarioSource(scenario, seed=29, packets=packets)
        compiled = source.compiled
        engine = ClassificationEngine(
            build_matcher("palmtrie-plus", compiled.entries, compiled.layout.length),
            EngineConfig(cache_size=256),
        )
        pipe = StreamPipeline(
            engine,
            policy="shed",
            max_inflight=scenario.max_inflight,
            service_quantum=scenario.service_quantum,
        )
        return pipe.run(source, on_burst=churn_applier(source, engine))

    first, second = run(), run()
    assert first.shed > 0, "the attack profile must overload the queue"
    assert first.shed == second.shed
    assert first.shed_rate == second.shed_rate


# ----------------------------------------------------------------------
# Latency histograms + observability plumbing
# ----------------------------------------------------------------------

class TestHistograms:
    def test_quantiles_cover_every_served_packet(self):
        engine, _ = _engine()
        pipe = StreamPipeline(engine, flow_buckets=4)
        pipe.run(TraceSource(_queries(300), KEY_LENGTH, burst_size=32))
        merged = pipe._merged_histogram()
        assert merged.count == 300
        quantiles = pipe.latency_quantiles()
        assert set(quantiles) == {"p50", "p90", "p99", "p999"}
        assert quantiles["p50"] <= quantiles["p999"]
        per_flow = pipe.flow_latency_quantiles()
        assert len(per_flow) == 4

    def test_histograms_can_be_disabled(self):
        engine, _ = _engine()
        pipe = StreamPipeline(engine, histograms=False)
        report = pipe.run(TraceSource(_queries(100), KEY_LENGTH, burst_size=32))
        assert report.latency is None
        assert pipe.latency_quantiles() is None
        assert pipe.flow_latency_quantiles() is None

    def test_metrics_registry_exports_stream_series(self):
        registry = MetricsRegistry()
        entries = random_entries(40, KEY_LENGTH, seed=6)
        engine = ClassificationEngine(
            build_matcher("palmtrie-plus", entries, KEY_LENGTH),
            EngineConfig(cache_size=64, metrics=registry),
        )
        pipe = StreamPipeline(engine, flow_buckets=2)
        pipe.run(TraceSource(_queries(200), KEY_LENGTH, burst_size=32))
        names = {metric.name for metric in registry.collect()}
        assert "stream_packets_total" in names
        assert "stream_flow_latency_seconds" in names
        assert "stream_backlog" in names
        served = registry.get("stream_packets_total", labels={"fate": "served"})
        assert served.value == 200

    def test_engine_report_gains_stream_section(self):
        engine, _ = _engine()
        pipe = StreamPipeline(engine, policy="shed", max_inflight=8, service_quantum=4)
        pipe.run(TraceSource(_queries(100), KEY_LENGTH, burst_size=20))
        section = engine.report()["stream"]
        assert section["policy"] == "shed"
        assert section["offered"] == 100
        assert section["shed"] == pipe.shed > 0
        assert "latency" in section
        assert section["shed_rate"] == pytest.approx(pipe.shed / 100)

    def test_counters_reset_between_runs(self):
        engine, _ = _engine()
        pipe = StreamPipeline(engine)
        pipe.run(TraceSource(_queries(64), KEY_LENGTH))
        report = pipe.run(TraceSource(_queries(32), KEY_LENGTH))
        assert report.offered == 32
        assert pipe.offered == 32


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestStreamCli:
    def test_scenarios_lists_registry(self, capsys):
        from repro.cli import main

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_replay_scenario(self, capsys):
        from repro.cli import main

        code = main(
            [
                "replay", "--scenario", "steady-zipf",
                "--packets", "500", "--seed", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streamed 500 packets" in out
        assert "backpressure" in out
        assert "latency" in out

    def test_replay_scenario_rejects_positionals(self, capsys):
        from repro.cli import main

        assert main(["replay", "a.acl", "b.trace", "--scenario", "steady-zipf"]) == 2
        assert "scenario" in capsys.readouterr().err

    def test_replay_unknown_scenario(self, capsys):
        from repro.cli import main

        assert main(["replay", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_replay_without_inputs_errors(self, capsys):
        from repro.cli import main

        assert main(["replay"]) == 2
        assert "acl and an input" in capsys.readouterr().err

    def test_replay_stream_over_trace(self, tmp_path, capsys):
        from repro.cli import main
        from repro.workloads import campus_acl, save_acl, save_trace, uniform_traffic
        from repro.workloads.campus import campus_rules

        acl_path = tmp_path / "campus.acl"
        trace_path = tmp_path / "campus.trace"
        rules = campus_rules(0)
        save_acl(rules, str(acl_path))
        acl = campus_acl(0)
        save_trace(
            uniform_traffic(acl.entries, 400, seed=3),
            acl.layout.length,
            str(trace_path),
        )
        code = main(
            [
                "replay", str(acl_path), str(trace_path),
                "--stream", "--policy", "block", "--max-inflight", "64",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streamed 400 packets" in out
        assert "policy block" in out
