"""Examples must keep running: each script executes end to end.

Fast examples always run; the heavier ones (multi-second builds) run
only when REPRO_RUN_SLOW_EXAMPLES=1 so the default suite stays quick.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")
SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))

FAST = [
    "quickstart.py",
    "paper_walkthrough.py",
    "flow_monitoring.py",
    "l2_filtering.py",
    "router.py",
]
SLOW = [
    "firewall.py",
    "flowspec_updates.py",
    "stateful_firewall.py",
    "structure_shootout.py",
    "trie_anatomy.py",
]


def _run(name: str, timeout: int = 240) -> subprocess.CompletedProcess:
    # The examples import ``repro`` without installing the package, so
    # the subprocess needs src/ on its path regardless of how pytest
    # itself was launched.
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC if not existing else os.pathsep.join([SRC, existing])
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES,
        env=env,
    )


@pytest.mark.parametrize("name", FAST)
def test_fast_example_runs(name):
    result = _run(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{name} produced no output"


@pytest.mark.parametrize("name", SLOW)
@pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_SLOW_EXAMPLES"),
    reason="set REPRO_RUN_SLOW_EXAMPLES=1 to run the heavy examples",
)
def test_slow_example_runs(name):
    result = _run(name, timeout=600)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_output_verdicts():
    result = _run("quickstart.py")
    assert "PERMIT" in result.stdout and "DENY" in result.stdout


def test_walkthrough_reproduces_winner():
    result = _run("paper_walkthrough.py")
    assert "selects entry 5" in result.stdout
