"""Unit tests for Palmtrie_k (repro.core.multibit, Algorithm 2)."""

import pytest

from helpers import assert_same_result, oracle_lookup, random_entries, table1_entries
from repro.core.multibit import EXACT, TERNARY, MultibitPalmtrie, key_path
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey


class TestKeyPath:
    """The §3.4 key split method."""

    def test_exact_key_is_fixed_stride(self):
        steps = key_path(TernaryKey.from_string("10110011"), 3)
        # Bit indices 5, 2, -1; the last chunk pads below bit 0.
        assert steps == [
            (5, EXACT, 0b101),
            (2, EXACT, 0b100),
            (-1, EXACT, 0b110),
        ]

    def test_paper_figure4_key_1_0___10(self):
        # Key 1*0***10 of Table 1 under k=3 (the Figure 4 walk, giving
        # Node 1's bit index of -1 via Node 2's chain).
        steps = key_path(TernaryKey.from_string("1*0***10"), 3)
        bits = [s[0] for s in steps]
        assert bits == [5, 3, 1, 0, -1]
        assert steps[0] == (5, TERNARY, (1 << 1) + 0b1 - 1)  # prefix "1" then *

    def test_dont_care_slot_indexing_matches_figure5(self):
        # Figure 5 (k=3): slot 0 is "*", slots 1-2 are "0*"/"1*",
        # slots 3-6 are "00*".."11*".
        assert key_path(TernaryKey.from_string("***"), 3)[0] == (0, TERNARY, 0)
        assert key_path(TernaryKey.from_string("0**"), 3)[0] == (0, TERNARY, 1)
        assert key_path(TernaryKey.from_string("1**"), 3)[0] == (0, TERNARY, 2)
        assert key_path(TernaryKey.from_string("00*"), 3)[0] == (0, TERNARY, 3)
        assert key_path(TernaryKey.from_string("11*"), 3)[0] == (0, TERNARY, 6)

    def test_star_consumes_one_digit(self):
        # A ternary step consumes prefix + '*', restarting below the star.
        steps = key_path(TernaryKey.from_string("0*110011"), 3)
        assert steps[0] == (5, TERNARY, (1 << 1) + 0 - 1)
        assert steps[1][0] == 3  # next chunk starts right below the star (bit 6)

    def test_terminal_star_at_bit_zero(self):
        steps = key_path(TernaryKey.from_string("000*"), 2)
        assert steps[-1][1] == TERNARY
        assert len(steps) == 2

    def test_negative_bit_greater_than_minus_k(self):
        for text in ("10110011", "1011001*", "*0110011"):
            for k in (3, 5, 7):
                for bit, _kind, _idx in key_path(TernaryKey.from_string(text), k):
                    assert bit > -k

    def test_bits_strictly_decrease(self):
        key = TernaryKey.from_string("1*0***10" * 2)
        for k in range(1, 9):
            bits = [s[0] for s in key_path(key, k)]
            assert bits == sorted(bits, reverse=True)
            assert len(set(bits)) == len(bits)

    def test_stride_longer_than_key_rejected(self):
        with pytest.raises(ValueError, match="shorter than stride"):
            key_path(TernaryKey.wildcard(4), 8)


class TestConstruction:
    def test_stride_validation(self):
        with pytest.raises(ValueError, match="stride"):
            MultibitPalmtrie(8, stride=0)
        with pytest.raises(ValueError, match="stride"):
            MultibitPalmtrie(8, stride=17)
        with pytest.raises(ValueError, match="exceeds key length"):
            MultibitPalmtrie(4, stride=8)

    def test_key_length_mismatch(self):
        trie = MultibitPalmtrie(8, stride=3)
        with pytest.raises(ValueError, match="key length"):
            trie.insert(TernaryEntry(TernaryKey.wildcard(16), 0, 1))

    @pytest.mark.parametrize("stride", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_table1_oracle_all_strides(self, stride):
        entries = table1_entries()
        trie = MultibitPalmtrie.build(entries, 8, stride=stride)
        for query in range(256):
            assert_same_result(oracle_lookup(entries, query), trie.lookup(query))

    def test_duplicate_keys_share_leaf(self):
        key = TernaryKey.from_string("0110****")
        trie = MultibitPalmtrie(8, stride=4)
        trie.insert(TernaryEntry(key, "a", 1))
        trie.insert(TernaryEntry(key, "b", 7))
        assert len(trie) == 2
        assert trie.lookup(0b01101111).value == "b"

    def test_path_compression_keeps_nodes_linear(self):
        entries = random_entries(300, 32, seed=3)
        trie = MultibitPalmtrie.build(entries, 32, stride=4)
        internal, leaves = trie.node_count()
        assert leaves <= 300
        assert internal < leaves  # compressed: no unary chain blowup

    def test_max_priority_invariant(self):
        entries = random_entries(150, 16, seed=4)
        trie = MultibitPalmtrie.build(entries, 16, stride=4)

        def check(node):
            from repro.core.multibit import _Internal

            if isinstance(node, _Internal):
                kids = list(node.children())
                assert kids, "internal node with no children"
                assert node.max_priority == max(k.max_priority for k in kids)
                for kid in kids:
                    check(kid)
            else:
                assert node.max_priority == max(e.priority for e in node.entries)

        check(trie._root) if list(trie._root.children()) else None


class TestSkipping:
    def test_skipping_does_not_change_results(self):
        entries = random_entries(200, 16, seed=5)
        with_skip = MultibitPalmtrie.build(entries, 16, stride=4, subtree_skipping=True)
        without = MultibitPalmtrie.build(entries, 16, stride=4, subtree_skipping=False)
        for query in range(0, 1 << 16, 101):
            assert_same_result(without.lookup(query), with_skip.lookup(query))

    def test_skipping_reduces_work(self):
        entries = random_entries(400, 16, seed=6)
        with_skip = MultibitPalmtrie.build(entries, 16, stride=4, subtree_skipping=True)
        without = MultibitPalmtrie.build(entries, 16, stride=4, subtree_skipping=False)
        queries = list(range(0, 1 << 16, 211))
        for trie in (with_skip, without):
            trie.stats.reset()
            for query in queries:
                trie.profile_lookup(query)
        assert (
            with_skip.stats.per_lookup()["node_visits"]
            <= without.stats.per_lookup()["node_visits"]
        )


class TestDeletion:
    def test_delete_and_relookup(self):
        entries = table1_entries()
        trie = MultibitPalmtrie.build(entries, 8, stride=3)
        assert trie.delete(TernaryKey.from_string("0*1101**"))
        result = trie.lookup(0b01110101)
        assert result.value == 8  # the next-best match from the paper walk

    def test_delete_missing_key(self):
        trie = MultibitPalmtrie.build(table1_entries(), 8, stride=3)
        assert not trie.delete(TernaryKey.from_string("00000000"))
        assert not trie.delete(TernaryKey.from_string("0000000*"))

    def test_delete_all_then_reinsert(self):
        entries = random_entries(100, 12, seed=7)
        trie = MultibitPalmtrie.build(entries, 12, stride=4)
        for entry in entries:
            trie.delete(entry.key)
        assert len(trie) == 0
        assert all(trie.lookup(q) is None for q in range(0, 1 << 12, 7))
        for entry in entries:
            trie.insert(entry)
        for query in range(0, 1 << 12, 13):
            assert_same_result(oracle_lookup(entries, query), trie.lookup(query))

    def test_delete_updates_max_priority(self):
        key_high = TernaryKey.from_string("1111****")
        key_low = TernaryKey.from_string("1110****")
        trie = MultibitPalmtrie(8, stride=4)
        trie.insert(TernaryEntry(key_low, "low", 1))
        trie.insert(TernaryEntry(key_high, "high", 9))
        trie.delete(key_high)
        assert trie._root.max_priority == 1

    def test_delete_wrong_length(self):
        trie = MultibitPalmtrie(8, stride=4)
        with pytest.raises(ValueError, match="key length"):
            trie.delete(TernaryKey.wildcard(4))


class TestRemoveEntry:
    def test_removes_only_target_entry(self):
        key = TernaryKey.from_string("0110****")
        trie = MultibitPalmtrie(8, stride=4)
        low = TernaryEntry(key, "low", 1)
        high = TernaryEntry(key, "high", 9)
        trie.insert(low)
        trie.insert(high)
        assert trie.remove_entry(high)
        assert len(trie) == 1
        assert trie.lookup(0b01101111).value == "low"

    def test_last_entry_removes_leaf(self):
        entries = table1_entries()
        trie = MultibitPalmtrie.build(entries, 8, stride=3)
        assert trie.remove_entry(entries[4])  # key 0*1101**, value 5
        assert trie.lookup(0b01110101).value == 8
        assert len(trie) == 8

    def test_missing_entry(self):
        entries = table1_entries()
        trie = MultibitPalmtrie.build(entries, 8, stride=3)
        ghost = TernaryEntry(entries[0].key, "ghost", 999)
        assert not trie.remove_entry(ghost)
        assert not trie.remove_entry(
            TernaryEntry(TernaryKey.from_string("00000000"), 0, 1)
        )
        assert len(trie) == 9

    def test_max_priority_refreshed(self):
        key = TernaryKey.from_string("1111****")
        trie = MultibitPalmtrie(8, stride=4)
        trie.insert(TernaryEntry(key, "low", 1))
        trie.insert(TernaryEntry(key, "high", 9))
        assert trie._root.max_priority == 9
        assert trie.remove_entry(TernaryEntry(key, "high", 9))
        assert trie._root.max_priority == 1

    def test_plus_delegates(self):
        from repro.core.plus import PalmtriePlus

        entries = table1_entries()
        plus = PalmtriePlus.build(entries, 8, stride=3)
        assert plus.remove_entry(entries[4])
        assert plus.lookup(0b01110101).value == 8

    def test_length_mismatch(self):
        trie = MultibitPalmtrie(8, stride=4)
        with pytest.raises(ValueError, match="key length"):
            trie.remove_entry(TernaryEntry(TernaryKey.wildcard(4), 0, 1))

    def test_random_removals_track_oracle(self):
        import random

        from helpers import oracle_lookup

        rng = random.Random(66)
        entries = random_entries(80, 12, seed=66)
        trie = MultibitPalmtrie.build(entries, 12, stride=4)
        live = list(entries)
        rng.shuffle(live)
        while live:
            victim = live.pop()
            assert trie.remove_entry(victim)
            for _ in range(20):
                query = rng.getrandbits(12)
                assert_same_result(oracle_lookup(live, query), trie.lookup(query))
        assert len(trie) == 0


class TestMemoryModel:
    def test_larger_stride_needs_more_memory(self):
        entries = random_entries(200, 24, seed=8)
        m1 = MultibitPalmtrie.build(entries, 24, stride=1).memory_bytes()
        m4 = MultibitPalmtrie.build(entries, 24, stride=4).memory_bytes()
        m8 = MultibitPalmtrie.build(entries, 24, stride=8).memory_bytes()
        assert m1 < m4 < m8
