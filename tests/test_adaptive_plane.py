"""The adaptive frozen-plane layer: hot layout, stride plans, autotune.

The load-bearing property is again differential: the hot-first layout
and a variable-stride :class:`StridePlan` are *representation* choices,
so a plane built under any layout/plan combination must return
verdict-identical answers to every other matcher kind over the same
table — including after a PLMF v2 save/load round trip and inside a
:class:`ShardedEngine`.  On top of that: plan validation and codecs,
corrupt-plan images fail closed as :class:`FormatError`, the ternary
slot cache stays bounded, the config knobs validate, ``report()``
surfaces the adaptive state, and :func:`autotune` returns a plan that
never loses to the best uniform stride it swept.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from helpers import assert_same_result, oracle_lookup, random_entries, table1_entries

from repro import MATCHER_KINDS, ClassificationEngine, EngineConfig, build_matcher
from repro.core.adaptive import AutotuneResult, autotune
from repro.core.frozen import FrozenMatcher, StridePlan, _ternary_slots, freeze
from repro.core.plus import PalmtriePlus
from repro.core.serialize import (
    _FROZEN_EXT,
    _FROZEN_HEADER,
    FormatError,
    deserialize_frozen,
    serialize_frozen,
)

KEY_LENGTH = 32


def _queries(count: int, seed: int = 0, bits: int = KEY_LENGTH) -> list[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(bits) for _ in range(count)]


def _unique_priorities(entries):
    """Re-rank so every entry wins outright — kinds may break priority
    ties differently, which is legal but not what these tests probe."""
    return [type(e)(e.key, e.value, i) for i, e in enumerate(entries)]


def _trace(entries, count: int, seed: int = 7) -> list[int]:
    """Half matching traffic (don't-care bits fuzzed), half random."""
    rng = random.Random(seed)
    queries = []
    for i in range(count):
        if entries and i % 2:
            e = entries[rng.randrange(len(entries))]
            queries.append(e.key.data | (rng.getrandbits(e.key.length) & e.key.mask))
        else:
            queries.append(rng.getrandbits(KEY_LENGTH))
    return queries


PLAN_A = StridePlan(4, 4, ((0, 2), (3, 8), (17, 6)))
PLAN_B = StridePlan(8, 6, ((1, 3),))


# ----------------------------------------------------------------------
# StridePlan validation and codecs
# ----------------------------------------------------------------------

class TestStridePlan:
    def test_slot_semantics(self):
        assert PLAN_A.stride_for(0) == 2
        assert PLAN_A.stride_for(3) == 8
        assert PLAN_A.stride_for(17) == 6
        assert PLAN_A.stride_for(5) == 4
        assert not PLAN_A.is_uniform
        assert StridePlan(4, 4).is_uniform
        assert StridePlan(4, 4, ((2, 4),)).is_uniform
        assert not StridePlan(4, 6).is_uniform

    def test_overrides_sorted_and_canonical(self):
        plan = StridePlan(4, 4, ((9, 2), (1, 3)))
        assert plan.subtrie_strides == ((1, 3), (9, 2))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(root_stride=0, default_stride=4),
            dict(root_stride=17, default_stride=4),
            dict(root_stride=4, default_stride=0),
            dict(root_stride=4, default_stride=4, subtrie_strides=((31, 4),)),
            dict(root_stride=4, default_stride=4, subtrie_strides=((0, 0),)),
            dict(root_stride=4, default_stride=4, subtrie_strides=((0, 17),)),
            dict(root_stride=4, default_stride=4, subtrie_strides=((0, 2), (0, 3))),
        ],
    )
    def test_rejects_malformed(self, kwargs):
        with pytest.raises(ValueError):
            StridePlan(**kwargs)

    def test_validate_against_key_length(self):
        PLAN_B.validate(512)
        with pytest.raises(ValueError):
            PLAN_B.validate(4)

    @pytest.mark.parametrize("plan", [PLAN_A, PLAN_B, StridePlan(8, 8)])
    def test_bytes_roundtrip(self, plan):
        assert StridePlan.from_bytes(plan.to_bytes()) == plan

    @pytest.mark.parametrize("plan", [PLAN_A, StridePlan(6, 6)])
    def test_json_roundtrip(self, plan):
        assert StridePlan.from_json(plan.to_json()) == plan

    def test_from_bytes_rejects_malformed(self):
        good = PLAN_A.to_bytes()
        for blob in (b"", good[:-1], good + b"\0", b"\x00" * len(good)):
            with pytest.raises(ValueError):
                StridePlan.from_bytes(blob)

    def test_describe(self):
        assert PLAN_A.describe() == "root=4 default=4 overrides=3"


# ----------------------------------------------------------------------
# Differential: any layout/plan must be verdict-invariant
# ----------------------------------------------------------------------

def _variants(entries, trace):
    """Frozen planes of the same table under every adaptive knob."""
    plan = StridePlan(4, 6, ((0, 2), (16, 8)))
    return {
        "build": FrozenMatcher.build(entries, KEY_LENGTH, stride=4),
        "hot": freeze(
            PalmtriePlus.build(entries, KEY_LENGTH, stride=4),
            layout="hot",
            trace=trace,
        ),
        "plan": FrozenMatcher.build(entries, KEY_LENGTH, stride=4, plan=plan),
        "hot+plan": freeze(
            PalmtriePlus.build(entries, KEY_LENGTH, stride=4),
            layout="hot",
            plan=plan,
            trace=trace,
        ),
    }


class TestLayoutPlanInvariance:
    @pytest.mark.parametrize("kind", sorted(MATCHER_KINDS))
    def test_against_every_matcher_kind(self, kind):
        entries = _unique_priorities(random_entries(60, KEY_LENGTH, seed=13))
        trace = _trace(entries, 200)
        reference = build_matcher(kind, entries, KEY_LENGTH)
        for label, plane in _variants(entries, trace).items():
            for query in trace:
                assert_same_result(reference.lookup(query), plane.lookup(query))

    def test_batch_agrees_with_scalar(self):
        entries = _unique_priorities(random_entries(80, KEY_LENGTH, seed=5))
        trace = _trace(entries, 300)
        for plane in _variants(entries, trace).values():
            batch = plane.lookup_batch(trace)
            for query, got in zip(trace, batch):
                assert_same_result(plane.lookup(query), got)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        count=st.integers(1, 40),
        layout=st.sampled_from(["build", "hot"]),
        root=st.sampled_from([2, 4, 8]),
        override_stride=st.sampled_from([1, 3, 6]),
    )
    def test_property_verdicts_match_oracle(
        self, seed, count, layout, root, override_stride
    ):
        entries = _unique_priorities(random_entries(count, KEY_LENGTH, seed=seed))
        trace = _trace(entries, 60, seed=seed)
        slot_limit = (1 << (root + 1)) - 1
        plan = StridePlan(root, root, ((seed % slot_limit, override_stride),))
        plane = freeze(
            PalmtriePlus.build(entries, KEY_LENGTH, stride=8),
            layout=layout,
            plan=plan,
            trace=trace if layout == "hot" else None,
        )
        for query in trace:
            assert_same_result(oracle_lookup(entries, query), plane.lookup(query))

    def test_refreeze_layout_switch_stays_coherent(self):
        entries = _unique_priorities(random_entries(50, KEY_LENGTH, seed=3))
        trace = _trace(entries, 150)
        plane = FrozenMatcher.build(entries, KEY_LENGTH, stride=4)
        want = [plane.lookup(q) for q in trace]
        plane = freeze(plane, layout="hot", trace=trace)
        assert plane.layout_applied == "hot"
        for query, expected in zip(trace, want):
            assert_same_result(expected, plane.lookup(query))
        plane = freeze(plane, layout="build")
        for query, expected in zip(trace, want):
            assert_same_result(expected, plane.lookup(query))


# ----------------------------------------------------------------------
# PLMF v2: permuted and variable-stride images round-trip; corruption
# fails closed
# ----------------------------------------------------------------------

class TestPlmfV2:
    def _planes(self):
        entries = _unique_priorities(random_entries(70, KEY_LENGTH, seed=21))
        trace = _trace(entries, 200)
        return entries, trace, _variants(entries, trace)

    def test_roundtrip_all_variants(self):
        entries, trace, variants = self._planes()
        for label, plane in variants.items():
            restored = deserialize_frozen(serialize_frozen(plane))
            assert restored.layout_applied == plane.layout_applied, label
            assert restored._plan == plane._plan, label
            assert restored.node_count() == plane.node_count(), label
            for query in trace:
                assert_same_result(plane.lookup(query), restored.lookup(query))
            batch = restored.lookup_batch(trace)
            for query, got in zip(trace, batch):
                assert_same_result(plane.lookup(query), got)

    def test_idempotent_bytes(self):
        _entries, _trace_, variants = self._planes()
        for label, plane in variants.items():
            data = serialize_frozen(plane)
            assert serialize_frozen(deserialize_frozen(data)) == data, label

    def test_v1_image_still_loads(self):
        """A v2 image of a plain plane minus the extension struct is
        exactly the v1 wire form; old images must keep loading."""
        entries = _unique_priorities(random_entries(40, KEY_LENGTH, seed=9))
        plane = FrozenMatcher.build(entries, KEY_LENGTH, stride=4)
        data = bytearray(serialize_frozen(plane))
        h = _FROZEN_HEADER.size
        v1 = data[:h] + data[h + _FROZEN_EXT.size :]
        v1[4:6] = (1).to_bytes(2, "little")
        restored = deserialize_frozen(bytes(v1))
        assert restored.layout_applied == "build"
        assert restored._plan is None
        for query in _queries(200, seed=2):
            assert_same_result(plane.lookup(query), restored.lookup(query))

    def test_unknown_version_rejected(self):
        data = bytearray(serialize_frozen(FrozenMatcher.build(table1_entries(), 8)))
        data[4:6] = (3).to_bytes(2, "little")
        with pytest.raises(FormatError):
            deserialize_frozen(bytes(data))

    def test_corrupt_stride_plan_fuzz(self):
        """Bit-flips anywhere in the extension + plan region must fail
        closed as FormatError, never load a lying plan or crash with an
        internal exception type."""
        entries = _unique_priorities(random_entries(50, KEY_LENGTH, seed=33))
        plan = StridePlan(4, 6, ((2, 3), (16, 8)))
        plane = FrozenMatcher.build(entries, KEY_LENGTH, stride=4, plan=plan)
        data = serialize_frozen(plane)
        h = _FROZEN_HEADER.size
        plan_len = len(plan.to_bytes())
        rng = random.Random(99)
        region = range(h, h + _FROZEN_EXT.size + plan_len)
        queries = _queries(50, seed=4)
        survived = 0
        for _ in range(120):
            mutated = bytearray(data)
            offset = rng.choice(region)
            mutated[offset] ^= 1 << rng.randrange(8)
            try:
                restored = deserialize_frozen(bytes(mutated))
            except FormatError:
                continue
            # A flip that still decodes must not change any verdict
            # (e.g. a bit restored to its own value elsewhere is
            # impossible here, but reserved-adjacent flips could pass).
            survived += 1
            for query in queries:
                assert_same_result(plane.lookup(query), restored.lookup(query))
        assert survived < 120, "every corruption slipped through undetected"

    def test_truncated_plan_blob_rejected(self):
        plan = StridePlan(4, 4, ((1, 2),))
        plane = FrozenMatcher.build(table1_entries(), 8, stride=4, plan=plan)
        data = serialize_frozen(plane)
        h = _FROZEN_HEADER.size + _FROZEN_EXT.size
        truncated = data[:h] + data[h + 5 :]
        with pytest.raises(FormatError):
            deserialize_frozen(truncated)


# ----------------------------------------------------------------------
# The ternary slot cache stays bounded
# ----------------------------------------------------------------------

class TestSlotCache:
    def test_lru_bounded(self):
        _ternary_slots.cache_clear()
        for stride in range(1, 13):
            _ternary_slots(stride)
        info = _ternary_slots.cache_info()
        assert info.currsize <= info.maxsize == 8

    def test_cache_clear_resets(self):
        _ternary_slots(4)
        _ternary_slots.cache_clear()
        assert _ternary_slots.cache_info().currsize == 0


# ----------------------------------------------------------------------
# EngineConfig knobs and engine report()
# ----------------------------------------------------------------------

class TestConfigKnobs:
    def test_layout_validates(self):
        EngineConfig(frozen_layout="hot")
        with pytest.raises(ValueError, match="frozen_layout"):
            EngineConfig(frozen_layout="hottest")

    def test_stride_plan_type_checked(self):
        EngineConfig(stride_plan=StridePlan(8, 8))
        with pytest.raises(TypeError, match="stride_plan"):
            EngineConfig(stride_plan={"root_stride": 8})

    def test_build_kwargs_route_by_capability(self):
        plan = StridePlan(4, 4, ((0, 2),))
        config = EngineConfig(
            matcher="frozen", stride=4, frozen_layout="hot", stride_plan=plan
        )
        kwargs = config.build_kwargs(MATCHER_KINDS["frozen"])
        assert kwargs == {"stride": 4, "layout": "hot", "plan": plan}
        # Kinds that cannot compile a layout/plan never see the knobs.
        naive = EngineConfig(
            matcher="palmtrie", stride=4, frozen_layout="hot", stride_plan=plan
        )
        assert naive.build_kwargs(MATCHER_KINDS["palmtrie"]) == {"stride": 4}

    def test_capability_flags(self):
        assert MATCHER_KINDS["frozen"].accepts_layout
        assert MATCHER_KINDS["frozen"].accepts_stride
        assert MATCHER_KINDS["palmtrie"].accepts_stride
        assert not MATCHER_KINDS["palmtrie"].accepts_layout
        assert not MATCHER_KINDS["sorted-list"].accepts_stride

    def test_build_matcher_compiles_plan(self):
        entries = _unique_priorities(random_entries(30, KEY_LENGTH, seed=1))
        plan = StridePlan(4, 6)
        config = EngineConfig(matcher="frozen", stride=4, stride_plan=plan)
        matcher = build_matcher(config, entries, KEY_LENGTH)
        assert isinstance(matcher, FrozenMatcher)
        assert matcher._plan == plan
        for query in _queries(100, seed=8):
            assert_same_result(oracle_lookup(entries, query), matcher.lookup(query))

    def test_engine_report_surfaces_adaptive_state(self):
        entries = _unique_priorities(random_entries(30, KEY_LENGTH, seed=2))
        plan = StridePlan(4, 4, ((0, 2),))
        config = EngineConfig(
            matcher="palmtrie-plus",
            auto_freeze=True,
            frozen_layout="hot",
            stride_plan=plan,
        )
        engine = ClassificationEngine(
            build_matcher(config, entries, KEY_LENGTH), config
        )
        for query in _queries(50, seed=3):
            engine.lookup(query)
        report = engine.report()
        assert report["frozen_layout"] == "hot"
        assert report["stride_plan"] == plan.describe()
        assert report["plane_layout"] == "hot"


# ----------------------------------------------------------------------
# autotune()
# ----------------------------------------------------------------------

class TestAutotune:
    def _workload(self):
        entries = _unique_priorities(random_entries(60, KEY_LENGTH, seed=17))
        return entries, _trace(entries, 300)

    def test_returns_valid_plan(self):
        entries, trace = self._workload()
        matcher = PalmtriePlus.build(entries, KEY_LENGTH, stride=8)
        result = autotune(
            matcher, trace, candidate_strides=(2, 4), max_subtries=2,
            rounds=1, sample=32, repeats=1,
        )
        assert isinstance(result, AutotuneResult)
        result.plan.validate(KEY_LENGTH)
        assert result.global_best_stride in (2, 4)
        assert result.score <= result.global_score
        assert result.evaluations >= 2
        assert result.history
        # Canonical form: no override merely restates the default.
        assert all(s != result.plan.root_stride
                   for _, s in result.plan.subtrie_strides)

    def test_tuned_plane_is_verdict_identical(self):
        entries, trace = self._workload()
        matcher = PalmtriePlus.build(entries, KEY_LENGTH, stride=8)
        result = autotune(
            matcher, trace, candidate_strides=(2, 4), max_subtries=2,
            rounds=1, sample=32, repeats=1,
        )
        plane = FrozenMatcher.build(
            entries, KEY_LENGTH,
            stride=result.plan.root_stride, plan=result.plan,
        )
        for query in trace[:150]:
            assert_same_result(oracle_lookup(entries, query), plane.lookup(query))

    def test_rejects_empty_inputs(self):
        entries, trace = self._workload()
        matcher = PalmtriePlus.build(entries, KEY_LENGTH, stride=8)
        with pytest.raises(ValueError, match="trace"):
            autotune(matcher, [])
        with pytest.raises(ValueError, match="entries"):
            autotune(PalmtriePlus(KEY_LENGTH), trace)
        with pytest.raises(ValueError, match="candidate stride"):
            autotune(matcher, trace, candidate_strides=(99,))
