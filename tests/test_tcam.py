"""Unit tests for the TCAM reference model (repro.baselines.tcam)."""

import pytest

from helpers import assert_same_result, oracle_lookup, random_entries, table1_entries
from repro.baselines.tcam import TcamModel
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey


class TestSemantics:
    def test_table1_oracle(self):
        entries = table1_entries()
        tcam = TcamModel.build(entries, 8)
        for query in range(256):
            assert_same_result(oracle_lookup(entries, query), tcam.lookup(query))

    def test_random_oracle(self):
        entries = random_entries(120, 16, seed=101)
        tcam = TcamModel.build(entries, 16)
        for query in range(0, 1 << 16, 149):
            assert_same_result(oracle_lookup(entries, query), tcam.lookup(query))

    def test_slot_order_is_priority_order(self):
        tcam = TcamModel(8)
        tcam.insert(TernaryEntry(TernaryKey.wildcard(8), "low", 1))
        tcam.insert(TernaryEntry(TernaryKey.wildcard(8), "high", 9))
        assert tcam.lookup(0).value == "high"

    def test_lookup_all(self):
        tcam = TcamModel.build(table1_entries(), 8)
        assert [e.value for e in tcam.lookup_all(0b01110101)] == [5, 8]

    def test_delete(self):
        tcam = TcamModel.build(table1_entries(), 8)
        assert tcam.delete(TernaryKey.from_string("0*1101**"))
        assert tcam.lookup(0b01110101).value == 8
        assert not tcam.delete(TernaryKey.from_string("00000000"))

    def test_single_cycle_work_model(self):
        tcam = TcamModel.build(table1_entries(), 8)
        tcam.stats.reset()
        for query in range(64):
            tcam.profile_lookup(query)
        assert tcam.stats.per_lookup()["node_visits"] == 1.0


class TestCapacityAndCost:
    def test_capacity_exhaustion(self):
        tcam = TcamModel(8, capacity=2)
        tcam.insert(TernaryEntry(TernaryKey.exact(1, 8), 1, 1))
        tcam.insert(TernaryEntry(TernaryKey.exact(2, 8), 2, 2))
        with pytest.raises(OverflowError, match="capacity"):
            tcam.insert(TernaryEntry(TernaryKey.exact(3, 8), 3, 3))

    def test_build_sizes_capacity(self):
        entries = random_entries(5000, 16, seed=102)
        tcam = TcamModel.build(entries, 16)
        assert tcam.capacity >= 5000

    def test_cost_scales_with_capacity_and_width(self):
        small = TcamModel(128, capacity=1024).cost()
        wide = TcamModel(512, capacity=1024).cost()
        deep = TcamModel(128, capacity=4096).cost()
        assert wide.search_energy_nj == pytest.approx(4 * small.search_energy_nj)
        assert deep.area_mm2 == pytest.approx(4 * small.area_mm2)
        assert small.watts_at_100mlps > 0

    def test_memory_is_provisioned_not_occupied(self):
        tcam = TcamModel(128, capacity=1024)
        empty_bytes = tcam.memory_bytes()
        tcam.insert(TernaryEntry(TernaryKey.wildcard(128), 0, 1))
        assert tcam.memory_bytes() == empty_bytes

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            TcamModel(8, capacity=0)
        tcam = TcamModel(8)
        with pytest.raises(ValueError, match="key length"):
            tcam.insert(TernaryEntry(TernaryKey.wildcard(4), 0, 1))
