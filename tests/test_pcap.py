"""Unit tests for the pcap codec (repro.packet.pcap)."""

import struct

import pytest

from repro.packet.codec import decode_packet, encode_packet
from repro.packet.headers import PROTO_TCP, PROTO_UDP, PacketHeader
from repro.packet.pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW,
    PcapFormatError,
    PcapPacket,
    read_pcap,
    write_pcap,
)


def _packets():
    return [
        PcapPacket(1.5, encode_packet(PacketHeader(1, 2, PROTO_TCP, 3, 4, 0x02))),
        PcapPacket(2.000001, encode_packet(PacketHeader(5, 6, PROTO_UDP, 7, 8))),
    ]


class TestRoundtrip:
    def test_raw_linktype(self, tmp_path):
        path = str(tmp_path / "t.pcap")
        originals = _packets()
        write_pcap(path, originals, linktype=LINKTYPE_RAW)
        loaded = list(read_pcap(path))
        assert [p.data for p in loaded] == [p.data for p in originals]
        assert loaded[0].timestamp == pytest.approx(1.5)
        assert loaded[1].timestamp == pytest.approx(2.000001)

    def test_ethernet_linktype_strips_header(self, tmp_path):
        path = str(tmp_path / "t.pcap")
        originals = _packets()
        write_pcap(path, originals, linktype=LINKTYPE_ETHERNET)
        loaded = list(read_pcap(path))
        assert [p.data for p in loaded] == [p.data for p in originals]

    def test_ethernet_without_strip(self, tmp_path):
        path = str(tmp_path / "t.pcap")
        write_pcap(path, _packets(), linktype=LINKTYPE_ETHERNET,
                   dst_mac=0x001122334455, src_mac=0x665544332211)
        (first, _second) = list(read_pcap(path, strip_ethernet=False))
        assert first.data[:6] == bytes.fromhex("001122334455")
        assert first.data[12:14] == b"\x08\x00"

    def test_decodes_back_to_headers(self, tmp_path):
        path = str(tmp_path / "t.pcap")
        header = PacketHeader(0x0A000001, 0xC0000201, PROTO_TCP, 1234, 80, 0x10)
        write_pcap(path, [PcapPacket(0.0, encode_packet(header))],
                   linktype=LINKTYPE_ETHERNET)
        (packet,) = list(read_pcap(path))
        assert decode_packet(packet.data) == header

    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "t.pcap")
        write_pcap(path, [])
        assert list(read_pcap(path)) == []

    def test_big_endian_read(self, tmp_path):
        # Hand-build a big-endian capture with one raw packet.
        path = tmp_path / "be.pcap"
        payload = encode_packet(PacketHeader(1, 2, PROTO_UDP, 3, 4))
        blob = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, LINKTYPE_RAW)
        blob += struct.pack(">IIII", 10, 0, len(payload), len(payload)) + payload
        path.write_bytes(blob)
        (packet,) = list(read_pcap(str(path)))
        assert packet.data == payload

    def test_non_ipv4_ethernet_frames_skipped(self, tmp_path):
        path = tmp_path / "mixed.pcap"
        ip_payload = encode_packet(PacketHeader(1, 2, PROTO_UDP, 3, 4))
        arp_frame = bytes(12) + b"\x08\x06" + bytes(28)
        ip_frame = bytes(12) + b"\x08\x00" + ip_payload
        blob = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, LINKTYPE_ETHERNET)
        for frame in (arp_frame, ip_frame):
            blob += struct.pack("<IIII", 0, 0, len(frame), len(frame)) + frame
        path.write_bytes(blob)
        packets = list(read_pcap(str(path)))
        assert len(packets) == 1
        assert packets[0].data == ip_payload


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(PcapFormatError, match="magic"):
            list(read_pcap(str(path)))

    def test_truncated_global_header(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\xd4\xc3\xb2\xa1")
        with pytest.raises(PcapFormatError, match="truncated pcap"):
            list(read_pcap(str(path)))

    def test_truncated_packet(self, tmp_path):
        path = tmp_path / "bad.pcap"
        good = str(tmp_path / "good.pcap")
        write_pcap(good, _packets())
        data = open(good, "rb").read()
        path.write_bytes(data[:-5])
        with pytest.raises(PcapFormatError, match="truncated packet"):
            list(read_pcap(str(path)))

    def test_unsupported_write_linktype(self, tmp_path):
        with pytest.raises(ValueError, match="linktype"):
            write_pcap(str(tmp_path / "x.pcap"), [], linktype=228)

    def test_unsupported_read_linktype(self, tmp_path):
        path = tmp_path / "x.pcap"
        path.write_bytes(struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 228))
        with pytest.raises(PcapFormatError, match="linktype"):
            list(read_pcap(str(path)))

    def test_snaplen_truncates(self, tmp_path):
        path = str(tmp_path / "snap.pcap")
        write_pcap(path, _packets(), snaplen=10)
        packets = list(read_pcap(path))
        assert all(len(p.data) == 10 for p in packets)
