"""Unit tests for the firewall engine (repro.apps.firewall)."""

import pytest

from repro.acl.parser import parse_acl
from repro.acl.rule import Action
from repro.apps.firewall import Firewall
from repro.packet.codec import encode_packet
from repro.packet.headers import PROTO_ICMP, PROTO_TCP, PROTO_UDP, PacketHeader

ACL = """\
permit tcp any 10.0.0.0/8 eq 80
permit udp any eq 53 10.0.0.0/8
deny icmp any 10.0.0.0/8
permit ip 10.0.0.0/8 any
"""


@pytest.fixture()
def firewall():
    return Firewall.from_text(ACL)


def _web():
    return PacketHeader(0x01020304, 0x0A000001, PROTO_TCP, 40000, 80)


class TestVerdicts:
    def test_permit(self, firewall):
        assert firewall.check(_web()) is Action.PERMIT
        assert firewall.permits(_web())

    def test_deny_rule(self, firewall):
        ping = PacketHeader(0x01020304, 0x0A000001, PROTO_ICMP)
        assert firewall.check(ping) is Action.DENY

    def test_implicit_default(self, firewall):
        stray = PacketHeader(0x01020304, 0x0B000001, PROTO_UDP, 1, 2)
        assert firewall.check(stray) is Action.DENY
        assert firewall.default_hits == 1

    def test_default_action_override(self):
        permissive = Firewall.from_text(ACL, default_action=Action.PERMIT)
        stray = PacketHeader(0x01020304, 0x0B000001, PROTO_UDP, 1, 2)
        assert permissive.check(stray) is Action.PERMIT


class TestCounters:
    def test_hits_attributed_to_rule(self, firewall):
        for _ in range(3):
            firewall.check(_web(), length=100)
        counters = firewall.counters()
        assert counters[0].packets == 3
        assert counters[0].octets == 300
        assert firewall.rule_hits(0) == 3
        assert firewall.rule_hits(1) == 0

    def test_unused_rules(self, firewall):
        firewall.check(_web())
        assert firewall.unused_rules() == [1, 2, 3]

    def test_clear(self, firewall):
        firewall.check(_web())
        firewall.clear_counters()
        assert firewall.rule_hits(0) == 0
        assert firewall.unused_rules() == [0, 1, 2, 3]

    def test_show_listing(self, firewall):
        firewall.check(_web())
        text = firewall.show()
        assert "permit tcp 0.0.0.0/0 10.0.0.0/8 eq 80" in text
        assert "(1 matches" in text
        assert "implicit deny" in text


class TestBytesPath:
    def test_check_bytes(self, firewall):
        assert firewall.check_bytes(encode_packet(_web())) is Action.PERMIT
        counter = firewall.counters()[0]
        assert counter.octets > 0  # frame length accounted

    def test_garbage_fails_closed(self, firewall):
        assert firewall.check_bytes(b"\xff\xff") is Action.DENY
        assert firewall.decode_errors == 1


class TestPolicySwap:
    def test_replace_policy(self, firewall):
        firewall.check(_web())
        new_rules = parse_acl("deny tcp any 10.0.0.0/8 eq 80\npermit ip any any\n")
        firewall.replace_policy(new_rules)
        assert firewall.check(_web()) is Action.DENY
        assert firewall.rule_hits(0) == 1  # fresh counters for fresh rules
        assert len(firewall.counters()) == 2

    def test_replace_policy_resets_decode_errors(self, firewall):
        firewall.check_bytes(b"\xff\xff")
        assert firewall.decode_errors == 1
        firewall.replace_policy(parse_acl("permit ip any any\n"))
        assert firewall.decode_errors == 0
        assert firewall.default_hits == 0

    def test_replace_policy_preserves_engine_stats(self, firewall):
        firewall.check(_web())
        firewall.check_batch([_web(), _web()])
        lookups_before = firewall.engine.stats.lookups
        assert lookups_before == 3
        firewall.replace_policy(parse_acl("permit ip any any\n"))
        # The swap is atomic on the existing engine: cumulative serving
        # stats survive, the flow cache does not, and the swap is logged.
        assert firewall.engine.stats.lookups == lookups_before
        assert firewall.engine.policy_swaps == 1
        assert len(firewall.engine.cache) == 0
        assert firewall.check(_web()) is Action.PERMIT
