"""The observability plane (repro.obs) and its CI trajectory gate.

Covers the zero-dependency metric primitives (log-bucketed histograms,
wrapping counters, the registry), the Prometheus text exposition and
JSON snapshot formats, the end-to-end CLI wiring (``replay
--metrics-out`` and the ``metrics`` subcommand), and the
``benchmarks/run_smokes.py`` perf-trajectory gate.
"""

import importlib.util
import json
import math
import sys
from pathlib import Path

import pytest

from repro.obs import (
    COUNTER_WIDTH,
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
    geometric_buckets,
    render_prometheus,
    snapshot,
    validate_snapshot,
    write_snapshot,
)

# ----------------------------------------------------------------------
# Bucket geometry
# ----------------------------------------------------------------------


class TestGeometricBuckets:
    def test_factor_two_ladder(self):
        bounds = geometric_buckets(1e-6, 2.0, 24)
        assert len(bounds) == 24
        assert bounds[0] == pytest.approx(1e-6)
        for lower, upper in zip(bounds, bounds[1:]):
            assert upper == pytest.approx(2.0 * lower)

    def test_default_latency_ladder_spans_us_to_seconds(self):
        # 1 us ... 2^23 us ~ 8.4 s: covers every latency this repo times.
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_LATENCY_BUCKETS[-1] > 8.0

    @pytest.mark.parametrize(
        "start, factor, count",
        [(0.0, 2.0, 4), (-1.0, 2.0, 4), (1.0, 1.0, 4), (1.0, 0.5, 4), (1.0, 2.0, 0)],
    )
    def test_invalid_geometry_rejected(self, start, factor, count):
        with pytest.raises(ValueError):
            geometric_buckets(start, factor, count)


# ----------------------------------------------------------------------
# Histogram: observation, boundaries, quantile math
# ----------------------------------------------------------------------


class TestHistogram:
    def test_boundary_values_land_in_lower_bucket(self):
        # bisect_left: a value exactly on a bound belongs to that bound's
        # bucket (le semantics, matching the cumulative exposition).
        h = Histogram("h", "", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)
        h.observe(2.0)
        h.observe(4.0)
        assert h.bucket_counts == [1, 1, 1, 0]

    def test_overflow_bucket(self):
        h = Histogram("h", "", buckets=(1.0, 2.0))
        h.observe(1000.0)
        assert h.bucket_counts == [0, 0, 1]
        cumulative = h.cumulative()
        assert cumulative[-1] == (math.inf, 1)

    def test_weighted_observe(self):
        h = Histogram("h", "", buckets=(1.0, 2.0, 4.0))
        h.observe(1.5, count=10)
        assert h.count == 10
        assert h.sum == pytest.approx(15.0)

    def test_quantiles_against_numpy(self):
        numpy = pytest.importorskip("numpy")
        rng = numpy.random.default_rng(7)
        values = rng.lognormal(mean=-8.0, sigma=1.5, size=5000)
        h = Histogram("h", "", buckets=geometric_buckets(1e-6, 2.0, 30))
        for value in values:
            h.observe(float(value))
        for q in (0.50, 0.90, 0.99):
            exact = float(numpy.percentile(values, q * 100))
            approx = h.quantile(q)
            # log-bucketed resolution: the estimate lives in the right
            # factor-2 bucket, so it is within 2x of the exact quantile.
            assert exact / 2.0 <= approx <= exact * 2.0, (q, exact, approx)

    def test_quantile_of_empty_histogram_is_nan(self):
        h = Histogram("h", "", buckets=(1.0, 2.0))
        assert math.isnan(h.quantile(0.5))

    def test_quantile_all_overflow_clamps_to_top_bound(self):
        h = Histogram("h", "", buckets=(1.0, 2.0))
        h.observe(99.0, count=5)
        assert h.quantile(0.5) == pytest.approx(2.0)

    def test_quantile_names(self):
        h = Histogram("h", "", buckets=(1.0,))
        h.observe(0.5)
        assert set(h.quantiles()) == {"p50", "p90", "p99", "p999"}

    def test_reset(self):
        h = Histogram("h", "", buckets=(1.0, 2.0))
        h.observe(1.5)
        h.reset()
        assert h.count == 0 and h.sum == 0.0
        assert h.bucket_counts == [0, 0, 0]

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", "", buckets=(2.0, 1.0))


# ----------------------------------------------------------------------
# Counter semantics
# ----------------------------------------------------------------------


class TestCounter:
    def test_negative_increment_rejected(self):
        c = Counter("c", "")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_overflow_wraps_at_2_64(self):
        c = Counter("c", "")
        c.inc((1 << COUNTER_WIDTH) - 1)
        c.inc(3)
        assert c.value == 2  # wrapped, like a hardware counter

    def test_reset(self):
        c = Counter("c", "")
        c.inc(41)
        c.reset()
        assert c.value == 0

    def test_set_total_for_mirrored_counters(self):
        c = Counter("c", "")
        c.set_total(1234)
        c.set_total(1240)
        assert c.value == 1240


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_same_name_same_labels_is_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", "", labels={"result": "hit"})
        b = registry.counter("hits_total", "", labels={"result": "hit"})
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing", "")
        with pytest.raises(ValueError):
            registry.gauge("thing", "")

    def test_collectors_run_once_per_collect(self):
        registry = MetricsRegistry()
        calls = []
        registry.add_collector(lambda: calls.append(1))
        registry.add_collector(lambda: calls.append(1))
        registry.collect()
        assert len(calls) == 2

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name", "")


# ----------------------------------------------------------------------
# Prometheus exposition (golden)
# ----------------------------------------------------------------------


class TestPrometheusExposition:
    def test_golden_output(self):
        registry = MetricsRegistry(namespace="testns")
        registry.counter("lookups_total", "Lookups.", labels={"result": "hit"}).inc(3)
        registry.counter("lookups_total", "Lookups.", labels={"result": "miss"}).inc(1)
        registry.gauge("cache_entries", "Rows cached.").set(42)
        h = registry.histogram("latency_seconds", "Latency.", buckets=(0.1, 1.0, 10.0))
        h.observe(0.05)
        h.observe(0.5, count=2)
        h.observe(99.0)
        expected = "\n".join(
            [
                "# HELP testns_cache_entries Rows cached.",
                "# TYPE testns_cache_entries gauge",
                "testns_cache_entries 42",
                "# HELP testns_latency_seconds Latency.",
                "# TYPE testns_latency_seconds histogram",
                'testns_latency_seconds_bucket{le="0.1"} 1',
                'testns_latency_seconds_bucket{le="1"} 3',
                'testns_latency_seconds_bucket{le="10"} 3',
                'testns_latency_seconds_bucket{le="+Inf"} 4',
                "testns_latency_seconds_sum 100.05",
                "testns_latency_seconds_count 4",
                "# HELP testns_lookups_total Lookups.",
                "# TYPE testns_lookups_total counter",
                'testns_lookups_total{result="hit"} 3',
                'testns_lookups_total{result="miss"} 1',
                "",
            ]
        )
        assert render_prometheus(registry) == expected

    def test_label_escaping(self):
        registry = MetricsRegistry(namespace="t")
        registry.counter("c_total", "", labels={"path": 'a"b\\c\nd'}).inc(1)
        text = render_prometheus(registry)
        assert '{path="a\\"b\\\\c\\nd"}' in text


# ----------------------------------------------------------------------
# JSON snapshot + structural validation
# ----------------------------------------------------------------------


class TestSnapshot:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Hits.").inc(5)
        registry.histogram("lat_seconds", "", buckets=(0.1, 1.0)).observe(0.5)
        return registry

    def test_roundtrip_validates(self, tmp_path):
        registry = self._registry()
        path = tmp_path / "snap.json"
        write_snapshot(registry, path)
        document = json.loads(path.read_text())
        assert document["schema"] == SNAPSHOT_SCHEMA
        assert validate_snapshot(document) == []

    def test_tampered_snapshot_detected(self):
        document = snapshot(self._registry())
        for entry in document["metrics"]:
            if entry["type"] == "histogram":
                # non-cumulative bucket counts must be flagged
                entry["buckets"][0]["count"] = 10**6
        assert validate_snapshot(document) != []

    def test_wrong_schema_detected(self):
        document = snapshot(self._registry())
        document["schema"] = "something/else/v9"
        problems = validate_snapshot(document)
        assert any("schema" in problem for problem in problems)


# ----------------------------------------------------------------------
# End-to-end: engine + CLI wiring
# ----------------------------------------------------------------------


class TestEngineIntegration:
    def test_enabled_engine_exports_core_metrics(self):
        from repro.acl.parser import parse_acl
        from repro.acl.compiler import compile_acl
        from repro.core.plus import PalmtriePlus
        from repro.engine import ClassificationEngine
        from repro.workloads.traffic import uniform_traffic

        acl = compile_acl(
            parse_acl(
                "permit ip 192.0.2.0/24 0.0.0.0/0\n"
                "deny ip 0.0.0.0/0 192.0.2.0/24\n"
            )
        )
        from repro.config import EngineConfig

        engine = ClassificationEngine(
            PalmtriePlus.build(acl.entries, acl.layout.length, stride=8),
            EngineConfig(metrics=True),
        )
        queries = uniform_traffic(acl.entries, 64)
        engine.lookup_batch(queries)
        engine.lookup_batch(queries)  # second pass hits the cache
        registry = engine.metrics
        names = {metric.name for metric in registry.collect()}
        assert {
            "engine_lookups_total",
            "engine_batches_total",
            "engine_batch_seconds",
            "engine_cache_entries",
        } <= names
        report = engine.report()
        assert report["metrics_enabled"] is True
        assert "latency" in report

    def test_disabled_engine_stays_uninstrumented(self):
        from repro.acl.parser import parse_acl
        from repro.acl.compiler import compile_acl
        from repro.core.plus import PalmtriePlus
        from repro.engine import ClassificationEngine

        acl = compile_acl(parse_acl("permit ip 0.0.0.0/0 0.0.0.0/0\n"))
        engine = ClassificationEngine(
            PalmtriePlus.build(acl.entries, acl.layout.length, stride=8)
        )
        assert engine.metrics is None
        assert engine.report()["metrics_enabled"] is False


class TestCliMetrics:
    @pytest.fixture()
    def dataset(self, tmp_path):
        from repro.cli import main

        acl_path = str(tmp_path / "m.acl")
        trace_path = str(tmp_path / "m.trace")
        assert main([
            "generate", "campus", "--q", "0", "-o", acl_path,
            "--trace", trace_path, "--trace-count", "80",
        ]) == 0
        return acl_path, trace_path

    def test_replay_metrics_out_writes_valid_snapshot(self, dataset, tmp_path, capsys):
        from repro.cli import main

        acl_path, trace_path = dataset
        out = tmp_path / "snapshot.json"
        assert main(["replay", acl_path, trace_path, "--metrics-out", str(out)]) == 0
        document = json.loads(out.read_text())
        assert validate_snapshot(document) == []
        names = {metric["name"] for metric in document["metrics"]}
        assert "engine_batch_seconds" in names
        assert "engine_lookups_total" in names
        assert "metrics" in capsys.readouterr().out

    def test_metrics_subcommand_prometheus(self, dataset, capsys):
        from repro.cli import main

        acl_path, trace_path = dataset
        assert main(["metrics", acl_path, trace_path]) == 0
        text = capsys.readouterr().out
        assert "# TYPE palmtrie_engine_batch_seconds histogram" in text
        assert 'le="+Inf"' in text

    def test_metrics_subcommand_json(self, dataset, capsys):
        from repro.cli import main

        acl_path, trace_path = dataset
        assert main(["metrics", acl_path, trace_path, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert validate_snapshot(document) == []


# ----------------------------------------------------------------------
# The perf-trajectory gate (benchmarks/run_smokes.py)
# ----------------------------------------------------------------------


def _load_run_smokes():
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "run_smokes.py"
    spec = importlib.util.spec_from_file_location("run_smokes_under_test", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


class TestTrajectoryGate:
    BASELINE = {"frozen_batch_speedup": 4.0, "engine_cache_speedup": 8.0}

    def test_within_tolerance_passes(self):
        run_smokes = _load_run_smokes()
        fresh = {"frozen_batch_speedup": 3.5, "engine_cache_speedup": 8.5}
        assert run_smokes.check_trajectory(fresh, self.BASELINE, 0.20) == []

    def test_25_percent_degradation_fails(self):
        run_smokes = _load_run_smokes()
        fresh = {
            "frozen_batch_speedup": 4.0 * 0.75,  # 25% below baseline
            "engine_cache_speedup": 8.0,
        }
        failures = run_smokes.check_trajectory(fresh, self.BASELINE, 0.20)
        assert len(failures) == 1
        assert "frozen_batch_speedup" in failures[0]

    def test_missing_metric_fails(self):
        run_smokes = _load_run_smokes()
        failures = run_smokes.check_trajectory(
            {"frozen_batch_speedup": 4.0}, self.BASELINE, 0.20
        )
        assert any("engine_cache_speedup" in failure for failure in failures)

    def test_bad_tolerance_rejected(self):
        run_smokes = _load_run_smokes()
        with pytest.raises(ValueError):
            run_smokes.check_trajectory({}, {}, 1.5)

    def test_committed_baseline_is_well_formed(self):
        path = Path(__file__).resolve().parent.parent / "benchmarks" / "BENCH_baseline.json"
        document = json.loads(path.read_text())
        metrics = document["metrics"]
        assert metrics, "baseline must gate at least one metric"
        for name, value in metrics.items():
            assert isinstance(value, (int, float)) and value > 0, name
        # every smoke headline ratio is gated
        assert {
            "engine_cache_speedup",
            "frozen_batch_speedup",
            "frozen_scalar_speedup",
            "metrics_overhead_ratio",
            "update_batch_speedup",
        } <= set(metrics)

    def test_trajectory_document_shape(self):
        run_smokes = _load_run_smokes()
        trajectory = run_smokes.build_trajectory({"a_ratio": 2.0, "b_ratio": 3.0})
        assert trajectory["schema"] == run_smokes.TRAJECTORY_SCHEMA
        assert len(trajectory["records"]) == 2
        for record in trajectory["records"]:
            assert set(record) == {"metric", "value", "commit", "timestamp"}
            assert record["commit"] == trajectory["commit"]
        assert run_smokes.trajectory_metrics(trajectory) == {"a_ratio": 2.0, "b_ratio": 3.0}
