"""Unit tests for multi-category classification (repro.core.categories)."""

import pytest

from repro.core.categories import CategorizedEntry, CategorizedTable
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey


def _key(text):
    return TernaryKey.from_string(text)


@pytest.fixture()
def table():
    table = CategorizedTable(8, stride=4)
    # Firewall category.
    table.add_rule(_key("0000****"), "permit-mgmt", 30, "fw")
    table.add_rule(_key("********"), "deny-rest", 10, "fw")
    # QoS category, overlapping the same key space.
    table.add_rule(_key("0000**00"), "gold", 20, "qos")
    table.add_rule(_key("********"), "best-effort", 5, "qos")
    return table


class TestClassify:
    def test_one_pass_returns_all_categories(self, table):
        winners = table.classify(0b00001100)
        assert winners["fw"].value == "permit-mgmt"
        assert winners["qos"].value == "gold"

    def test_per_category_priority_encoding(self, table):
        winners = table.classify(0b11110000)
        assert winners["fw"].value == "deny-rest"
        assert winners["qos"].value == "best-effort"

    def test_missing_category_absent(self):
        table = CategorizedTable(8, stride=4)
        table.add_rule(_key("0000****"), "x", 1, "fw")
        winners = table.classify(0b11110000)
        assert winners == {}

    def test_classify_value_with_default(self, table):
        assert table.classify_value(0b00001100, "qos") == "gold"
        assert table.classify_value(0b00001100, "mirror", default="none") == "none"

    def test_categories_property(self, table):
        assert table.categories == frozenset({"fw", "qos"})

    def test_len(self, table):
        assert len(table) == 4


class TestEntryType:
    def test_categorized_entry_fields(self):
        entry = CategorizedEntry(_key("01**"), "v", 3, "fw")
        assert entry.key == _key("01**")
        assert entry.priority == 3
        assert entry.category == "fw"
        assert entry.matches(0b0100)

    def test_frozen(self):
        entry = CategorizedEntry(_key("01**"), "v", 3, "fw")
        # Frozen slotted dataclass subclasses raise TypeError (CPython's
        # zero-arg-super quirk) rather than FrozenInstanceError; either
        # way mutation must fail.
        with pytest.raises((AttributeError, TypeError)):
            entry.category = "other"

    def test_plain_entry_rejected(self):
        table = CategorizedTable(8)
        with pytest.raises(TypeError, match="CategorizedEntry"):
            table.insert(TernaryEntry(_key("01******"), "v", 1))

    def test_matcher_without_lookup_all_rejected(self):
        from repro.baselines.dpdk_acl import DpdkStyleAcl

        class NoMulti(DpdkStyleAcl):
            lookup_all = None

        with pytest.raises(TypeError):
            CategorizedTable(8, matcher=object())


class TestAgainstPerCategoryOracle:
    def test_random(self):
        import random

        rng = random.Random(77)
        entries = []
        for i in range(60):
            digits = "".join(rng.choice("01*") for _ in range(8))
            entries.append(
                CategorizedEntry(
                    _key(digits), i, rng.randrange(100), rng.choice(("a", "b", "c"))
                )
            )
        table = CategorizedTable.build(entries, 8, stride=3)
        for query in range(256):
            winners = table.classify(query)
            for category in ("a", "b", "c"):
                expected = max(
                    (
                        e
                        for e in entries
                        if e.category == category and e.matches(query)
                    ),
                    key=lambda e: e.priority,
                    default=None,
                )
                got = winners.get(category)
                assert (expected and expected.priority) == (got and got.priority)
