"""Unit tests for IPv6 support (repro.acl.ipv6, paper §5)."""

import pytest

from repro.acl.ipv6 import (
    Ipv6Rule,
    compile_ipv6_rules,
    format_ipv6,
    parse_ipv6,
    parse_prefix6,
    synthetic_ipv6_rules,
)
from repro.acl.layout import LAYOUT_V6
from repro.acl.rule import Action, Protocol
from repro.baselines.sorted_list import SortedListMatcher
from repro.core.plus import PalmtriePlus


class TestParseIpv6:
    @pytest.mark.parametrize(
        "text, value",
        [
            ("::", 0),
            ("::1", 1),
            ("2001:db8::", 0x20010DB8 << 96),
            ("2001:db8::1", (0x20010DB8 << 96) | 1),
            ("fe80::1:2:3", (0xFE80 << 112) | (1 << 32) | (2 << 16) | 3),
            ("1:2:3:4:5:6:7:8", 0x00010002000300040005000600070008),
            ("::ffff:192.0.2.1", (0xFFFF << 32) | 0xC0000201),
        ],
    )
    def test_valid(self, text, value):
        assert parse_ipv6(text) == value

    @pytest.mark.parametrize(
        "text",
        [
            "", ":::", "1::2::3", "1:2:3:4:5:6:7", "1:2:3:4:5:6:7:8:9",
            "12345::", "gggg::", "::192.0.2.1:1", "1:2:3:4:5:6:7:8::",
        ],
    )
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_ipv6(text)


class TestFormatIpv6:
    @pytest.mark.parametrize(
        "text", ["::", "::1", "2001:db8::", "2001:db8::1", "1:2:3:4:5:6:7:8", "2001:db8:0:1::"]
    )
    def test_canonical_roundtrip(self, text):
        assert format_ipv6(parse_ipv6(text)) == text

    def test_longest_zero_run_compressed(self):
        # RFC 5952: compress the *longest* run.
        assert format_ipv6(parse_ipv6("1:0:0:2:0:0:0:3")) == "1:0:0:2::3"

    def test_single_zero_group_not_compressed(self):
        assert format_ipv6(parse_ipv6("1:0:2:3:4:5:6:7")) == "1:0:2:3:4:5:6:7"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv6(1 << 128)


class TestPrefix6:
    def test_parse(self):
        assert parse_prefix6("2001:db8::/32") == (0x20010DB8 << 96, 32)

    def test_bare_address(self):
        assert parse_prefix6("::1") == (1, 128)

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError, match="host bits"):
            parse_prefix6("2001:db8::1/32")

    def test_bad_length(self):
        with pytest.raises(ValueError):
            parse_prefix6("::/129")


class TestIpv6Rules:
    def test_compile_shape(self):
        rules = [
            Ipv6Rule(Action.PERMIT, Protocol.TCP, (0, 0), parse_prefix6("2001:db8::/32"),
                     dst_ports=(443, 443)),
            Ipv6Rule(Action.DENY, Protocol.IP, (0, 0), (0, 0)),
        ]
        entries = compile_ipv6_rules(rules)
        assert len(entries) == 2
        assert all(e.key.length == 512 for e in entries)
        assert entries[0].priority > entries[1].priority

    def test_lookup_semantics(self):
        rules = [
            Ipv6Rule(Action.PERMIT, Protocol.TCP, (0, 0), parse_prefix6("2001:db8::/32"),
                     dst_ports=(443, 443)),
            Ipv6Rule(Action.DENY, Protocol.IP, (0, 0), (0, 0)),
        ]
        entries = compile_ipv6_rules(rules)
        matcher = PalmtriePlus.build(entries, 512, stride=8)
        https = LAYOUT_V6.pack_query(
            src_ip=parse_ipv6("2001:db8:ffff::9"),
            dst_ip=parse_ipv6("2001:db8::1"),
            proto=6,
            dst_port=443,
        )
        ssh = LAYOUT_V6.pack_query(
            src_ip=parse_ipv6("2001:db8:ffff::9"),
            dst_ip=parse_ipv6("2001:db8::1"),
            proto=6,
            dst_port=22,
        )
        assert matcher.lookup(https).value == 0
        assert matcher.lookup(ssh).value == 1

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="prefix length"):
            Ipv6Rule(Action.PERMIT, Protocol.IP, (0, 129), (0, 0))
        with pytest.raises(ValueError, match="require tcp or udp"):
            Ipv6Rule(Action.PERMIT, Protocol.ICMP, (0, 0), (0, 0), dst_ports=(1, 1))


class TestIpv6Dialect:
    def test_parse_rule(self):
        from repro.acl.ipv6 import parse_ipv6_rule

        rule = parse_ipv6_rule("permit tcp any 2001:db8::/32 eq 443")
        assert rule.action is Action.PERMIT
        assert rule.protocol is Protocol.TCP
        assert rule.dst_prefix == (0x20010DB8 << 96, 32)
        assert rule.dst_ports == (443, 443)

    def test_roundtrip_to_line(self):
        from repro.acl.ipv6 import parse_ipv6_rule

        lines = [
            "permit tcp any 2001:db8::/32 eq 443",
            "deny ip any any",
            "permit udp 2001:db8:1::/48 eq 53 any",
            "permit tcp any range 1000 2000 2001:db8::/32",
        ]
        for line in lines:
            assert parse_ipv6_rule(line).to_line() == line

    def test_parse_acl_with_comments(self):
        from repro.acl.ipv6 import parse_ipv6_acl

        rules = parse_ipv6_acl(
            "# v6 policy\npermit tcp any 2001:db8::/32 eq 443  # web\ndeny ip any any\n"
        )
        assert len(rules) == 2

    def test_errors(self):
        from repro.acl.parser import AclParseError
        from repro.acl.ipv6 import parse_ipv6_rule

        for line, match in [
            ("permit tcp any", "at least"),
            ("allow tcp any any", "unknown action"),
            ("permit icmp any eq 1 any", "only valid"),
            ("permit tcp any any eq", "needs a port"),
            ("permit tcp any any eq 99999", "invalid port range"),
            ("permit tcp any any extra", "unexpected token"),
            ("permit tcp zzzz::/200 any", "prefix length"),
        ]:
            with pytest.raises(AclParseError, match=match):
                parse_ipv6_rule(line)

    def test_end_to_end(self):
        from repro.acl.ipv6 import compile_ipv6_rules, parse_ipv6_acl

        rules = parse_ipv6_acl(
            "permit tcp any 2001:db8::/32 eq 443\ndeny ip any any\n"
        )
        entries = compile_ipv6_rules(rules)
        matcher = PalmtriePlus.build(entries, 512, stride=8)
        query = LAYOUT_V6.pack_query(
            src_ip=parse_ipv6("fe80::1"),
            dst_ip=parse_ipv6("2001:db8::5"),
            proto=6,
            dst_port=443,
        )
        assert matcher.lookup(query).value == 0


class TestSyntheticIpv6:
    def test_deterministic(self):
        a = synthetic_ipv6_rules(50, seed=1)
        b = synthetic_ipv6_rules(50, seed=1)
        assert compile_ipv6_rules(a) == compile_ipv6_rules(b)

    def test_count_and_validity(self):
        rules = synthetic_ipv6_rules(80)
        assert len(rules) == 80
        entries = compile_ipv6_rules(rules)
        assert len(entries) >= 80

    def test_palmtrie_agrees_with_oracle_on_512_bits(self):
        import random

        entries = compile_ipv6_rules(synthetic_ipv6_rules(60))
        oracle = SortedListMatcher.build(entries, 512)
        plus = PalmtriePlus.build(entries, 512, stride=8)
        rng = random.Random(6)
        from repro.workloads.traffic import query_matching_entry

        for _ in range(200):
            query = query_matching_entry(entries[rng.randrange(len(entries))], rng)
            a = oracle.lookup(query)
            b = plus.lookup(query)
            assert (a and a.priority) == (b and b.priority)

    def test_bad_count(self):
        with pytest.raises(ValueError, match="positive"):
            synthetic_ipv6_rules(0)
