"""Unit tests for ternary table compression (repro.acl.compress)."""

import random

import pytest

from helpers import oracle_lookup
from repro.acl.compress import compress_entries, compression_ratio
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey


def _entry(text, value=0, priority=1):
    return TernaryEntry(TernaryKey.from_string(text), value, priority)


class TestAdjacencyMerge:
    def test_single_bit_pair_merges(self):
        compressed = compress_entries([_entry("0101"), _entry("0100")])
        assert len(compressed) == 1
        assert compressed[0].key.to_string() == "010*"

    def test_four_way_merge_to_fixpoint(self):
        compressed = compress_entries(
            [_entry("0100"), _entry("0101"), _entry("0110"), _entry("0111")]
        )
        assert len(compressed) == 1
        assert compressed[0].key.to_string() == "01**"

    def test_different_values_do_not_merge(self):
        compressed = compress_entries(
            [_entry("0100", value="a"), _entry("0101", value="b")]
        )
        assert len(compressed) == 2

    def test_different_priorities_do_not_merge(self):
        compressed = compress_entries(
            [_entry("0100", priority=1), _entry("0101", priority=2)]
        )
        assert len(compressed) == 2

    def test_non_adjacent_keys_survive(self):
        entries = [_entry("0000"), _entry("0011")]
        compressed = compress_entries(entries)
        assert len(compressed) == 2

    def test_existing_wildcards_participate(self):
        compressed = compress_entries([_entry("010*"), _entry("011*")])
        assert len(compressed) == 1
        assert compressed[0].key.to_string() == "01**"

    def test_mixed_masks_do_not_merge_directly(self):
        # 010* and 0110 differ in mask shape; no single-bit merge applies.
        compressed = compress_entries([_entry("010*"), _entry("0110")])
        assert len(compressed) == 2

    def test_empty(self):
        assert compress_entries([]) == []

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="key length"):
            compress_entries([_entry("01"), _entry("011")])


class TestSemanticsPreserved:
    def test_port_range_cover_compresses_and_agrees(self):
        from repro.acl.compiler import compile_acl
        from repro.acl.parser import parse_acl

        acl = compile_acl(parse_acl(
            "permit tcp any any range 1024 2047\n"
            "permit tcp any any range 8 15\n"
            "deny ip any any\n"
        ))
        # Each aligned range is already one prefix; expand one rule into
        # adjacent exact ports instead.
        extra = compile_acl(parse_acl(
            "permit tcp any any eq 80\npermit tcp any any eq 81\n"
        ))
        entries = list(acl.entries)
        # Re-tag the two eq entries to one class so they can merge.
        entries += [
            TernaryEntry(e.key, "web", 50) for e in extra.entries
        ]
        compressed = compress_entries(entries)
        assert len(compressed) < len(entries)

    def test_random_tables_equivalent(self):
        rng = random.Random(301)
        for _ in range(5):
            entries = []
            for value in range(4):
                for _i in range(rng.randrange(3, 12)):
                    key = TernaryKey(rng.getrandbits(8), rng.getrandbits(8) & 0b11, 8)
                    entries.append(TernaryEntry(key, value, value))
            compressed = compress_entries(entries)
            assert len(compressed) <= len(entries)
            for query in range(256):
                before = oracle_lookup(entries, query)
                after = oracle_lookup(compressed, query)
                assert (before and before.priority) == (after and after.priority)

    def test_ratio(self):
        entries = [_entry(f"{i:04b}") for i in range(16)]
        compressed = compress_entries(entries)
        assert len(compressed) == 1  # collapses to ****
        assert compression_ratio(entries, compressed) == pytest.approx(15 / 16)
        assert compression_ratio([], []) == 0.0
