"""Unit tests for the radix tree substrate (repro.core.radix)."""

import pytest

from repro.core.radix import RadixTree


class TestFigure1:
    """The paper's Figure 1 example: keys 100, 001, 010."""

    @pytest.fixture()
    def tree(self):
        tree = RadixTree(3)
        tree.insert(0b100, 3, 1)
        tree.insert(0b001, 3, 2)
        tree.insert(0b010, 3, 3)
        return tree

    def test_exact_lookups(self, tree):
        assert tree.lookup_exact(0b100, 3) == 1
        assert tree.lookup_exact(0b001, 3) == 2
        assert tree.lookup_exact(0b010, 3) == 3
        assert tree.lookup_exact(0b111, 3) is None

    def test_node_count_includes_unary_chains(self, tree):
        # The radix tree keeps unary branching nodes: root plus the 8
        # path nodes of Figure 1 left.
        assert tree.node_count() == 9

    def test_len(self, tree):
        assert len(tree) == 3


class TestLpm:
    def test_longest_prefix_wins(self):
        tree = RadixTree(8)
        tree.insert(0b1, 1, "short")
        tree.insert(0b1010, 4, "long")
        assert tree.lookup_lpm(0b10101111) == "long"
        assert tree.lookup_lpm(0b10111111) == "short"
        assert tree.lookup_lpm(0b00000000) is None

    def test_default_route(self):
        tree = RadixTree(8)
        tree.insert(0, 0, "default")
        assert tree.lookup_lpm(0xFF) == "default"


class TestMutation:
    def test_overwrite_keeps_size(self):
        tree = RadixTree(4)
        tree.insert(0b1010, 4, "a")
        tree.insert(0b1010, 4, "b")
        assert len(tree) == 1
        assert tree.lookup_exact(0b1010, 4) == "b"

    def test_delete_prunes(self):
        tree = RadixTree(4)
        tree.insert(0b1010, 4, "a")
        tree.insert(0b10, 2, "b")
        assert tree.delete(0b1010, 4)
        assert tree.lookup_exact(0b1010, 4) is None
        assert tree.lookup_exact(0b10, 2) == "b"
        # The chain below 10 must be gone.
        assert tree.node_count() == 3

    def test_delete_missing(self):
        tree = RadixTree(4)
        assert not tree.delete(0b1010, 4)
        tree.insert(0b1010, 4, "a")
        assert not tree.delete(0b1011, 4)
        assert not tree.delete(0b101, 3)

    def test_items(self):
        tree = RadixTree(4)
        tree.insert(0b10, 2, "a")
        tree.insert(0b1011, 4, "b")
        assert sorted(tree.items()) == [(0b10, 2, "a"), (0b1011, 4, "b")]


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            RadixTree(0)

    def test_bad_prefix(self):
        tree = RadixTree(4)
        with pytest.raises(ValueError):
            tree.insert(0, 5, "x")
        with pytest.raises(ValueError):
            tree.insert(0b111, 2, "x")
