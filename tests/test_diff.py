"""Unit tests for ACL diffing (repro.acl.diff)."""

from repro.acl.diff import diff_acls
from repro.acl.parser import parse_acl


def _rules(text):
    return parse_acl(text)


BASE = """\
permit tcp any 10.0.0.0/8 eq 80
permit udp any eq 53 10.0.0.0/8
deny ip any 10.0.0.0/8
permit ip 10.0.0.0/8 any
"""


class TestTextualDiff:
    def test_identical(self):
        rules = _rules(BASE)
        diff = diff_acls(rules, list(rules))
        assert diff.textually_identical
        assert diff.semantically_equivalent
        assert diff.summary() == "identical"

    def test_added_rule(self):
        old = _rules(BASE)
        new = _rules(BASE + "permit icmp any 10.0.0.0/8\n")
        diff = diff_acls(old, new)
        assert len(diff.added) == 1
        assert diff.added[0][0] == 4
        assert not diff.removed and not diff.moved

    def test_removed_rule(self):
        old = _rules(BASE)
        new = old[:1] + old[2:]
        diff = diff_acls(old, new)
        assert len(diff.removed) == 1
        assert diff.removed[0][0] == 1

    def test_moved_rule_detected(self):
        old = _rules(BASE)
        new = [old[1], old[0]] + old[2:]
        diff = diff_acls(old, new)
        assert len(diff.moved) == 1
        assert not diff.added and not diff.removed

    def test_duplicate_rules_matched_pairwise(self):
        old = _rules("permit ip any any\npermit ip any any\n")
        new = _rules("permit ip any any\n")
        diff = diff_acls(old, new)
        assert len(diff.removed) == 1
        assert not diff.added


class TestSemanticCheck:
    def test_swapping_disjoint_rules_is_equivalent(self):
        old = _rules("permit tcp any 10.0.0.0/8\ndeny udp any 11.0.0.0/8\n")
        new = list(reversed(old))
        diff = diff_acls(old, new)
        assert diff.moved
        assert diff.semantically_equivalent

    def test_swapping_overlapping_rules_changes_semantics(self):
        old = _rules("deny tcp any 10.0.0.0/8 eq 80\npermit tcp any 10.0.0.0/8\n")
        new = list(reversed(old))
        diff = diff_acls(old, new, samples=2500)
        assert not diff.semantically_equivalent
        assert "SEMANTICS CHANGED" in diff.summary()

    def test_removing_redundant_rule_is_equivalent(self):
        old = _rules("permit ip 10.0.0.0/8 any\npermit ip 10.1.0.0/16 any\n")
        new = old[:1]
        diff = diff_acls(old, new)
        assert diff.removed
        assert diff.semantically_equivalent

    def test_removing_live_rule_changes_semantics(self):
        old = _rules(BASE)
        new = old[1:]  # drop the web permit; those packets now hit deny
        diff = diff_acls(old, new, samples=2000)
        assert not diff.semantically_equivalent

    def test_summary_counts(self):
        old = _rules(BASE)
        new = [old[1], old[0], old[2]] + _rules("permit icmp any any\n")
        diff = diff_acls(old, new)
        text = diff.summary()
        assert "+1 added" in text
        assert "-1 removed" in text
        assert "~1 moved" in text
