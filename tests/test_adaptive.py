"""Unit tests for the adaptive matcher (repro.core.adaptive, paper §5)."""

import pytest

from helpers import assert_same_result, random_entries
from repro.baselines.sorted_list import SortedListMatcher
from repro.core.adaptive import AdaptiveMatcher
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey


def _entries(n, seed=51):
    return random_entries(n, 16, seed=seed)


class TestBandSelection:
    def test_starts_small(self):
        matcher = AdaptiveMatcher(16, small_threshold=10, large_threshold=100, hysteresis=0)
        assert matcher.active_structure == "sorted-list"

    def test_grows_to_medium_then_large(self):
        matcher = AdaptiveMatcher(16, small_threshold=10, large_threshold=50, hysteresis=0)
        for entry in _entries(11):
            matcher.insert(entry)
        assert matcher.active_structure == "palmtrie"
        for entry in _entries(45, seed=52):
            matcher.insert(entry)
        assert matcher.active_structure == "palmtrie-plus"

    def test_shrinks_on_delete(self):
        entries = _entries(60)
        matcher = AdaptiveMatcher.build(
            entries, 16, small_threshold=10, large_threshold=50, hysteresis=0
        )
        assert matcher.active_structure == "palmtrie-plus"
        for entry in entries[:55]:
            matcher.delete(entry.key)
        assert matcher.active_structure == "sorted-list"

    def test_build_picks_band_directly(self):
        matcher = AdaptiveMatcher.build(
            _entries(30), 16, small_threshold=10, large_threshold=50
        )
        assert matcher.active_structure == "palmtrie"


class TestHysteresis:
    """§5: avoid flapping of data structure switching at a threshold."""

    def test_no_flap_around_threshold(self):
        matcher = AdaptiveMatcher(16, small_threshold=10, large_threshold=100, hysteresis=5)
        entries = _entries(12)
        for entry in entries:
            matcher.insert(entry)
        # 12 entries is inside the hysteresis band: still the sorted list.
        assert matcher.active_structure == "sorted-list"
        for entry in _entries(5, seed=53):
            matcher.insert(entry)
        assert matcher.active_structure == "palmtrie"
        # Deleting back to 12 must NOT flip back immediately.
        for entry in entries[:5]:
            matcher.delete(entry.key)
        assert matcher.active_structure == "palmtrie"


class TestCorrectness:
    def test_agrees_with_oracle_across_bands(self):
        entries = _entries(120)
        oracle = SortedListMatcher.build(entries, 16)
        matcher = AdaptiveMatcher(16, small_threshold=20, large_threshold=80, hysteresis=2)
        for i, entry in enumerate(entries):
            matcher.insert(entry)
        for query in range(0, 1 << 16, 211):
            assert_same_result(oracle.lookup(query), matcher.lookup(query))

    def test_profile_lookup_delegates(self):
        matcher = AdaptiveMatcher.build(_entries(5), 16)
        matcher.stats.reset()
        matcher.profile_lookup(123)
        assert matcher.stats.lookups == 1

    def test_memory_delegates(self):
        matcher = AdaptiveMatcher.build(_entries(5), 16)
        assert matcher.memory_bytes() > 0


class TestValidation:
    def test_threshold_ordering(self):
        with pytest.raises(ValueError, match="thresholds"):
            AdaptiveMatcher(16, small_threshold=100, large_threshold=10)

    def test_negative_hysteresis(self):
        with pytest.raises(ValueError, match="hysteresis"):
            AdaptiveMatcher(16, hysteresis=-1)

    def test_key_length_check(self):
        matcher = AdaptiveMatcher(16)
        with pytest.raises(ValueError, match="key length"):
            matcher.insert(TernaryEntry(TernaryKey.wildcard(8), 0, 1))

    def test_delete_missing(self):
        matcher = AdaptiveMatcher.build(_entries(5), 16)
        assert not matcher.delete(TernaryKey.exact(0, 16))
