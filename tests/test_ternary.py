"""Unit tests for the ternary key algebra (repro.core.ternary)."""

import pytest

from repro.core.ternary import TernaryKey, extract_chunk


class TestExtractChunk:
    def test_positive_offset(self):
        assert extract_chunk(0b10110100, 2, 3) == 0b101

    def test_zero_offset(self):
        assert extract_chunk(0b10110100, 0, 4) == 0b0100

    def test_negative_offset_pads_with_zero(self):
        # Paper §3.4: bits below position 0 read as 0.
        assert extract_chunk(0b101, -2, 3) == 0b100

    def test_negative_offset_fully_below(self):
        assert extract_chunk(0b1, -1, 3) == 0b010


class TestParsing:
    def test_from_string_paper_example(self):
        key = TernaryKey.from_string("011*1000")
        assert key.length == 8
        assert key.data == 0b01101000
        assert key.mask == 0b00010000

    def test_roundtrip(self):
        for text in ("011*1000", "1*0***10", "0001****", "********", "00000000"):
            assert TernaryKey.from_string(text).to_string() == text

    def test_invalid_digit(self):
        with pytest.raises(ValueError, match="invalid ternary digit"):
            TernaryKey.from_string("01x1")

    def test_empty_string_is_zero_length(self):
        key = TernaryKey.from_string("")
        assert key.length == 0
        assert key.matches(0)

    def test_repr_shows_digits(self):
        assert repr(TernaryKey.from_string("01*")) == "TernaryKey('01*')"


class TestConstruction:
    def test_exact(self):
        key = TernaryKey.exact(0b101, 3)
        assert key.is_exact
        assert key.to_string() == "101"

    def test_wildcard(self):
        key = TernaryKey.wildcard(4)
        assert key.to_string() == "****"
        assert key.wildcard_count == 4

    def test_from_prefix(self):
        key = TernaryKey.from_prefix(0b101, 3, 8)
        assert key.to_string() == "101*****"

    def test_from_prefix_zero_length(self):
        assert TernaryKey.from_prefix(0, 0, 4).to_string() == "****"

    def test_from_prefix_full_length(self):
        assert TernaryKey.from_prefix(0b1111, 4, 4).to_string() == "1111"

    def test_from_prefix_out_of_range(self):
        with pytest.raises(ValueError, match="prefix length"):
            TernaryKey.from_prefix(0, 9, 8)

    def test_data_under_mask_is_normalized(self):
        # A '1' under a don't care position carries no information.
        key = TernaryKey(0b1111, 0b0101, 4)
        assert key.data == 0b1010

    def test_oversized_data_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            TernaryKey(0b10000, 0, 4)

    def test_oversized_mask_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            TernaryKey(0, 0b10000, 4)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            TernaryKey(0, 0, -1)


class TestMatching:
    def test_paper_table1_example(self):
        # §3.1: 011*1000 matches 01101000 and 01111000.
        key = TernaryKey.from_string("011*1000")
        assert key.matches(0b01101000)
        assert key.matches(0b01111000)
        assert not key.matches(0b01101001)

    def test_wildcard_matches_everything(self):
        key = TernaryKey.wildcard(8)
        assert all(key.matches(q) for q in range(256))

    def test_exact_matches_only_itself(self):
        key = TernaryKey.exact(0b1010, 4)
        assert [q for q in range(16) if key.matches(q)] == [0b1010]

    def test_enumerate_matches(self):
        key = TernaryKey.from_string("0*1*")
        assert sorted(key.enumerate_matches()) == [0b0010, 0b0011, 0b0110, 0b0111]

    def test_enumerate_matches_refuses_blowup(self):
        with pytest.raises(ValueError, match="refusing"):
            list(TernaryKey.wildcard(30).enumerate_matches())


class TestCoversOverlaps:
    def test_covers(self):
        assert TernaryKey.from_string("01**").covers(TernaryKey.from_string("011*"))
        assert not TernaryKey.from_string("011*").covers(TernaryKey.from_string("01**"))

    def test_covers_self(self):
        key = TernaryKey.from_string("0*1")
        assert key.covers(key)

    def test_overlaps_symmetric(self):
        a = TernaryKey.from_string("01**")
        b = TernaryKey.from_string("0**1")
        assert a.overlaps(b) and b.overlaps(a)

    def test_disjoint(self):
        a = TernaryKey.from_string("00**")
        b = TernaryKey.from_string("01**")
        assert not a.overlaps(b)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="different lengths"):
            TernaryKey.from_string("01").covers(TernaryKey.from_string("011"))


class TestBitAccess:
    def test_bit_indexing_msb_is_length_minus_one(self):
        key = TernaryKey.from_string("10*")
        assert key.bit(2) == "1"
        assert key.bit(1) == "0"
        assert key.bit(0) == "*"

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            TernaryKey.from_string("10*").bit(3)

    def test_chunk(self):
        key = TernaryKey.from_string("10*01")
        assert key.chunk(2, 3).to_string() == "10*"
        assert key.chunk(0, 2).to_string() == "01"

    def test_chunk_negative_offset(self):
        key = TernaryKey.from_string("1*")
        assert key.chunk(-1, 3).to_string() == "1*0"

    def test_msb_wildcard(self):
        assert TernaryKey.from_string("0*1*").msb_wildcard() == 2
        assert TernaryKey.from_string("0011").msb_wildcard() == -1

    def test_first_diff_bit(self):
        a = TernaryKey.from_string("0110")
        b = TernaryKey.from_string("0*10")
        assert a.first_diff_bit(b) == 2
        assert a.first_diff_bit(a) == -1

    def test_first_diff_star_vs_digit(self):
        # '*' is a distinct third digit for structural comparison.
        a = TernaryKey.from_string("1*")
        b = TernaryKey.from_string("10")
        assert a.first_diff_bit(b) == 0

    def test_concat(self):
        a = TernaryKey.from_string("01")
        b = TernaryKey.from_string("*1")
        assert a.concat(b).to_string() == "01*1"
