"""Integration tests: multi-module end-to-end scenarios."""

import random

from repro.acl.analyzer import equivalent_on_samples, remove_redundant
from repro.acl.compiler import compile_acl
from repro.acl.rule import Action
from repro.apps.conntrack import StatefulFirewall
from repro.apps.firewall import Firewall
from repro.apps.flowmon import FlowMonitor
from repro.apps.l3fwd import L3Forwarder
from repro.cli import main
from repro.core.serialize import load_plus
from repro.packet.codec import decode_packet, encode_packet
from repro.packet.headers import PROTO_TCP, PacketHeader
from repro.workloads.campus import campus_acl, campus_rules
from repro.workloads.io import load_acl, load_trace
from repro.workloads.traffic import uniform_traffic


class TestCliPipeline:
    """generate -> analyze -> compile -> load -> match, all via files."""

    def test_full_loop(self, tmp_path, capsys):
        acl_path = str(tmp_path / "ds.acl")
        trace_path = str(tmp_path / "ds.trace")
        table_path = str(tmp_path / "ds.plm")
        assert main([
            "generate", "campus", "--q", "1", "-o", acl_path,
            "--trace", trace_path, "--trace-count", "200",
        ]) == 0
        # The generated file parses back to the canonical dataset.
        assert load_acl(acl_path) == campus_rules(1)
        # Compile to a binary table and load it.
        assert main(["compile", acl_path, "-o", table_path]) == 0
        matcher = load_plus(table_path)
        # Replaying the trace against the loaded table matches the
        # freshly compiled oracle on every query.
        queries, key_length = load_trace(trace_path)
        assert key_length == 128
        compiled = compile_acl(load_acl(acl_path))
        from repro.baselines.sorted_list import SortedListMatcher

        oracle = SortedListMatcher.build(compiled.entries, 128)
        for query in queries:
            a = oracle.lookup(query)
            b = matcher.lookup(query)
            assert (a and a.priority) == (b and b.priority)
        capsys.readouterr()


class TestOptimizedPolicyDeployment:
    """Analyzer-optimized rules must behave identically in the firewall."""

    def test_optimization_preserves_firewall_behaviour(self):
        rules = campus_rules(1)
        # Inject redundancy: duplicate some rules at lower priority.
        bloated = rules + rules[:10]
        optimized = remove_redundant(bloated)
        assert len(optimized) < len(bloated)
        assert equivalent_on_samples(bloated, optimized, samples=500) is None
        original = Firewall(compile_acl(bloated))
        slim = Firewall(compile_acl(optimized))
        queries = uniform_traffic(compile_acl(bloated).entries, 300)
        for query in queries:
            header = PacketHeader.from_query(query)
            assert original.check(header) == slim.check(header)


class TestDataPlaneStack:
    """Router + flow monitor + stateful firewall sharing one stream."""

    def test_combined_pipeline(self):
        acl = campus_acl(2)
        router = L3Forwarder(
            acl,
            routes=[(0x0A, 8, 1), (0, 0, 0)],
            default_action=Action.DENY,
        )
        monitor = FlowMonitor(acl.entries, idle_timeout=60.0, default_class=-1)
        rng = random.Random(13)
        wire_frames = []
        for _ in range(150):
            inside = 0x0A000000 | rng.getrandbits(24)
            header = PacketHeader(inside, rng.getrandbits(32), PROTO_TCP,
                                  rng.randrange(1024, 65536), 443, 0x18)
            wire_frames.append(encode_packet(header, payload=b"x" * 32))
        forwarded = 0
        for clock, frame in enumerate(wire_frames):
            header = decode_packet(frame)
            verdict = router.process(header)
            if verdict.action == "forward":
                forwarded += 1
                monitor.observe(header, length=len(frame), timestamp=float(clock))
        assert forwarded == router.stats.forwarded
        assert monitor.packets_seen == forwarded
        # Outbound campus traffic hits the per-prefix permit rules.
        assert all(r.traffic_class >= 0 for r in monitor.flows())

    def test_stateful_over_palmtrie_scales(self):
        acl = campus_acl(2)
        firewall = StatefulFirewall(acl)
        rng = random.Random(14)
        permits = 0
        for i in range(200):
            inside = 0x0A000000 | rng.getrandbits(24)
            syn = PacketHeader(inside, rng.getrandbits(32), PROTO_TCP,
                               rng.randrange(1024, 65536), 443, 0x02)
            if firewall.check(syn, float(i)) is Action.PERMIT:
                permits += 1
                reply = PacketHeader(syn.dst_ip, syn.src_ip, PROTO_TCP,
                                     443, syn.src_port, 0x12)
                assert firewall.check(reply, float(i) + 0.1) is Action.PERMIT
        assert permits > 0
        assert firewall.fast_path_hits == permits


class TestSerializationDeployment:
    def test_control_plane_to_data_plane(self, tmp_path):
        """Compile on one 'node', ship bytes, serve lookups on another."""
        from repro.core.plus import PalmtriePlus
        from repro.core.serialize import save_plus

        acl = campus_acl(2)
        control_plane = PalmtriePlus.build(acl.entries, 128, stride=8)
        path = str(tmp_path / "table.plm")
        save_plus(control_plane, path)
        data_plane = load_plus(path)
        queries = uniform_traffic(acl.entries, 300)
        for query in queries:
            a = control_plane.lookup(query)
            b = data_plane.lookup(query)
            assert a.priority == b.priority
        # The data plane can keep taking incremental updates (§3.6 path).
        from repro.core.table import TernaryEntry
        from repro.core.ternary import TernaryKey

        block = TernaryEntry(TernaryKey.wildcard(128), "block-all", 10_000)
        data_plane.insert(block)
        assert data_plane.lookup(queries[0]).value == "block-all"
