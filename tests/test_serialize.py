"""Unit tests for the Palmtrie+ binary codec (repro.core.serialize)."""

import pytest

from helpers import assert_same_result, random_entries, table1_entries
from repro.core.plus import PalmtriePlus
from repro.core.serialize import (
    FormatError,
    deserialize_plus,
    load_plus,
    save_plus,
    serialize_plus,
)
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey


class TestRoundtrip:
    @pytest.mark.parametrize("stride", [1, 3, 8])
    def test_lookup_equivalence(self, stride):
        entries = table1_entries()
        original = PalmtriePlus.build(entries, 8, stride=stride)
        restored = deserialize_plus(serialize_plus(original))
        for query in range(256):
            assert_same_result(original.lookup(query), restored.lookup(query))

    def test_random_tables(self):
        entries = random_entries(120, 16, seed=71)
        original = PalmtriePlus.build(entries, 16, stride=4)
        restored = deserialize_plus(serialize_plus(original))
        for query in range(0, 1 << 16, 131):
            assert_same_result(original.lookup(query), restored.lookup(query))

    def test_idempotent_bytes(self):
        original = PalmtriePlus.build(table1_entries(), 8, stride=3)
        data = serialize_plus(original)
        assert serialize_plus(deserialize_plus(data)) == data

    def test_geometry_preserved(self):
        original = PalmtriePlus.build(
            table1_entries(), 8, stride=3, subtree_skipping=False
        )
        restored = deserialize_plus(serialize_plus(original))
        assert restored.stride == 3
        assert restored.key_length == 8
        assert restored.subtree_skipping is False
        assert restored.node_count() == original.node_count()

    def test_incremental_update_after_load(self):
        entries = table1_entries()
        restored = deserialize_plus(
            serialize_plus(PalmtriePlus.build(entries[:-1], 8, stride=3))
        )
        assert restored.lookup(0b10000000) is None
        restored.insert(entries[-1])
        assert restored.lookup(0b10000000).value == 9

    def test_value_types(self):
        entries = [
            TernaryEntry(TernaryKey.from_string("00**"), None, 1),
            TernaryEntry(TernaryKey.from_string("01**"), -12345, 2),
            TernaryEntry(TernaryKey.from_string("10**"), "drop", 3),
            TernaryEntry(TernaryKey.from_string("11**"), True, 4),
            TernaryEntry(TernaryKey.from_string("111*"), False, 5),
        ]
        restored = deserialize_plus(
            serialize_plus(PalmtriePlus.build(entries, 4, stride=2))
        )
        assert restored.lookup(0b0000).value is None
        assert restored.lookup(0b0100).value == -12345
        assert restored.lookup(0b1000).value == "drop"
        assert restored.lookup(0b1101).value is True
        assert restored.lookup(0b1110).value is False

    def test_unsupported_value_rejected(self):
        entries = [TernaryEntry(TernaryKey.wildcard(8), object(), 1)]
        matcher = PalmtriePlus.build(entries, 8, stride=3)
        with pytest.raises(FormatError, match="unsupported entry value"):
            serialize_plus(matcher)

    def test_empty_table(self):
        restored = deserialize_plus(serialize_plus(PalmtriePlus(8, stride=3)))
        assert restored.lookup(0) is None
        assert len(restored) == 0

    def test_file_io(self, tmp_path):
        original = PalmtriePlus.build(table1_entries(), 8, stride=3)
        path = str(tmp_path / "table.plm")
        written = save_plus(original, path)
        assert written == (tmp_path / "table.plm").stat().st_size
        restored = load_plus(path)
        assert restored.lookup(0b01110101).value == 5
        with open(path, "rb") as handle:
            assert load_plus(handle).lookup(0b01110101).value == 5


class TestCorruption:
    @pytest.fixture()
    def blob(self):
        return serialize_plus(PalmtriePlus.build(table1_entries(), 8, stride=3))

    def test_truncated_header(self):
        with pytest.raises(FormatError, match="truncated"):
            deserialize_plus(b"PLM+")

    def test_bad_magic(self, blob):
        with pytest.raises(FormatError, match="magic"):
            deserialize_plus(b"XXXX" + blob[4:])

    def test_bad_version(self, blob):
        corrupted = bytearray(blob)
        corrupted[4] = 0xFF
        with pytest.raises(FormatError, match="version"):
            deserialize_plus(bytes(corrupted))

    def test_truncated_body(self, blob):
        with pytest.raises(FormatError, match="size mismatch"):
            deserialize_plus(blob[:-3])

    def test_trailing_garbage(self, blob):
        with pytest.raises(FormatError, match="size mismatch"):
            deserialize_plus(blob + b"\x00")


class TestSizeModel:
    def test_serialized_size_tracks_memory_model(self):
        """The wire format is the modeled C layout; sizes must agree to
        within the header/value-blob overhead."""
        entries = random_entries(200, 16, seed=72)
        matcher = PalmtriePlus.build(entries, 16, stride=4)
        wire = len(serialize_plus(matcher))
        modeled = matcher.memory_bytes()
        assert 0.4 < wire / modeled < 2.6
