"""Tests for multi-match lookup (lookup_all) across structures."""

import random

import pytest

from helpers import random_entries, table1_entries
from repro.baselines.dpdk_acl import DpdkStyleAcl
from repro.baselines.sorted_list import SortedListMatcher
from repro.core.basic import BasicPalmtrie
from repro.core.multibit import MultibitPalmtrie
from repro.core.plus import PalmtriePlus

MATCHER_BUILDERS = [
    lambda e, L: SortedListMatcher.build(e, L),
    lambda e, L: BasicPalmtrie.build(e, L),
    lambda e, L: MultibitPalmtrie.build(e, L, stride=3),
    lambda e, L: MultibitPalmtrie.build(e, L, stride=8),
    lambda e, L: PalmtriePlus.build(e, L, stride=4),
]


def _oracle_all(entries, query):
    return sorted(
        (e for e in entries if e.key.matches(query)),
        key=lambda e: e.priority,
        reverse=True,
    )


class TestPaperExample:
    @pytest.mark.parametrize("build", MATCHER_BUILDERS)
    def test_table1_query_matches_5_and_8(self, build):
        # §3.1: query 01110101 matches exactly entries 5 and 8.
        entries = table1_entries()
        matcher = build(entries, 8)
        matches = matcher.lookup_all(0b01110101)
        assert [m.value for m in matches] == [5, 8]
        assert [m.priority for m in matches] == [7, 2]

    @pytest.mark.parametrize("build", MATCHER_BUILDERS)
    def test_no_match_is_empty(self, build):
        matcher = build(table1_entries(), 8)
        assert matcher.lookup_all(0b00100000) == []


class TestDifferential:
    @pytest.mark.parametrize("build", MATCHER_BUILDERS)
    def test_random_tables(self, build):
        entries = random_entries(80, 12, seed=55)
        matcher = build(entries, 12)
        rng = random.Random(55)
        for _ in range(300):
            query = rng.getrandbits(12)
            expected = _oracle_all(entries, query)
            got = matcher.lookup_all(query)
            # Same multiset of priorities in the same (non-strict) order.
            assert [e.priority for e in got] == [e.priority for e in expected]
            assert {id(e) for e in got} == {
                id(e) for e in entries if e.key.matches(query)
            }

    @pytest.mark.parametrize("build", MATCHER_BUILDERS)
    def test_first_of_all_is_lookup(self, build):
        entries = random_entries(60, 12, seed=56)
        matcher = build(entries, 12)
        for query in range(0, 1 << 12, 41):
            all_matches = matcher.lookup_all(query)
            single = matcher.lookup(query)
            if single is None:
                assert all_matches == []
            else:
                assert all_matches[0].priority == single.priority


class TestUnsupported:
    def test_dpdk_style_raises(self):
        matcher = DpdkStyleAcl.build(table1_entries(), 8)
        with pytest.raises(NotImplementedError, match="multi-match"):
            matcher.lookup_all(0)
