"""Unit tests for the EffiCuts-style baseline (repro.baselines.efficuts)."""

import pytest

from helpers import assert_same_result, oracle_lookup, random_entries, table1_entries
from repro.baselines.efficuts import EffiCutsClassifier, _field_range
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey


class TestFieldRange:
    def _entry(self, text):
        return TernaryEntry(TernaryKey.from_string(text), 0, 1)

    def test_prefix_field(self):
        assert _field_range(self._entry("10**"), 0, 4) == (0b1000, 0b1011)

    def test_exact_field(self):
        assert _field_range(self._entry("1010"), 0, 4) == (0b1010, 0b1010)

    def test_wildcard_field(self):
        assert _field_range(self._entry("****"), 0, 4) == (0, 15)

    def test_non_prefix_ternary_widens(self):
        # 1*1* is not prefix-shaped: widened to the whole dimension.
        assert _field_range(self._entry("1*1*"), 0, 4) == (0, 15)

    def test_subfield(self):
        assert _field_range(self._entry("10**0011"), 4, 4) == (0b1000, 0b1011)


class TestCorrectness:
    def test_table1(self):
        entries = table1_entries()
        matcher = EffiCutsClassifier.build(entries, 8)
        for query in range(256):
            assert_same_result(oracle_lookup(entries, query), matcher.lookup(query))

    def test_random_tables(self):
        entries = random_entries(80, 16, seed=41)
        matcher = EffiCutsClassifier.build(entries, 16)
        for query in range(0, 1 << 16, 151):
            assert_same_result(oracle_lookup(entries, query), matcher.lookup(query))

    def test_counted_agrees(self):
        entries = random_entries(50, 16, seed=42)
        matcher = EffiCutsClassifier.build(entries, 16)
        for query in range(0, 1 << 16, 997):
            a = matcher.lookup(query)
            b = matcher.profile_lookup(query)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.priority == b.priority

    def test_empty(self):
        matcher = EffiCutsClassifier.build([], 16)
        assert matcher.lookup(0) is None
        assert len(matcher) == 0


class TestTreeSeparation:
    def test_mixed_largeness_builds_multiple_trees(self):
        entries = [
            TernaryEntry(TernaryKey.from_string("00000000" + "*" * 8), "specific", 3),
            TernaryEntry(TernaryKey.from_string("*" * 16), "wild", 1),
        ]
        matcher = EffiCutsClassifier.build(entries, 16, dimensions=((8, 8), (0, 8)))
        assert matcher.tree_count == 2

    def test_binth_limits_leaf_size(self):
        # Cutting needs prefix/range-shaped fields (EffiCuts' assumption);
        # fully random ternary keys all widen to the whole dimension.
        import random

        rng = random.Random(43)
        entries = []
        for i in range(200):
            prefix_len = rng.randrange(4, 17)
            entries.append(
                TernaryEntry(
                    TernaryKey.from_prefix(rng.getrandbits(prefix_len), prefix_len, 16),
                    i,
                    rng.randrange(1000),
                )
            )
        matcher = EffiCutsClassifier.build(entries, 16, binth=4)
        internal, leaves = matcher.node_count()
        assert internal > 0 and leaves > 1

    def test_dimension_validation(self):
        with pytest.raises(ValueError, match="outside"):
            EffiCutsClassifier(16, dimensions=((8, 16),))

    def test_no_incremental_updates(self):
        matcher = EffiCutsClassifier.build(table1_entries(), 8)
        with pytest.raises(NotImplementedError):
            matcher.insert(TernaryEntry(TernaryKey.wildcard(8), 0, 0))

    def test_default_v4_dimensions(self):
        matcher = EffiCutsClassifier(128)
        assert len(matcher.dimensions) == 5  # TCP flags excluded (§4.3)

    def test_memory_model_positive(self):
        matcher = EffiCutsClassifier.build(random_entries(100, 16, seed=44), 16)
        assert matcher.memory_bytes() > 0
