"""Unit tests for layer 2 ACL support (repro.acl.layer2)."""

import pytest

from repro.acl.layer2 import (
    LAYOUT_L2,
    EtherType,
    L2Rule,
    compile_l2_rules,
    format_mac,
    parse_mac,
)
from repro.acl.parser import parse_rule
from repro.core.plus import PalmtriePlus


class TestMacParsing:
    def test_parse(self):
        assert parse_mac("00:11:22:33:44:55") == 0x001122334455
        assert parse_mac("AA-BB-CC-DD-EE-FF") == 0xAABBCCDDEEFF

    def test_roundtrip(self):
        for text in ("00:11:22:33:44:55", "ff:ff:ff:ff:ff:ff", "02:00:00:00:00:01"):
            assert format_mac(parse_mac(text)) == text

    @pytest.mark.parametrize("text", ["", "00:11:22:33:44", "00:11:22:33:44:55:66", "gg:00:00:00:00:00", "0:11:22:33:44:55"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_mac(text)

    def test_format_out_of_range(self):
        with pytest.raises(ValueError):
            format_mac(1 << 48)


class TestLayout:
    def test_total_length(self):
        assert LAYOUT_L2.length == 256

    def test_l2_fields_above_l3(self):
        assert LAYOUT_L2.offset("dst_mac") > LAYOUT_L2.offset("src_ip")


class TestL2Rules:
    def _query(self, **kwargs):
        defaults = dict(
            dst_mac=parse_mac("00:11:22:33:44:55"),
            src_mac=parse_mac("66:77:88:99:aa:bb"),
            ethertype=EtherType.IPV4,
            vlan=100,
            pcp=0,
            src_ip=0x0A000001,
            dst_ip=0xC0000201,
            proto=6,
            src_port=40000,
            dst_port=443,
            tcp_flags=0x02,
        )
        defaults.update(kwargs)
        return LAYOUT_L2.pack_query(**defaults)

    def test_exact_mac_rule(self):
        rules = [
            L2Rule(priority=2, value="mgmt", dst_mac=(parse_mac("00:11:22:33:44:55"), (1 << 48) - 1)),
            L2Rule(priority=1, value="rest"),
        ]
        matcher = PalmtriePlus.build(compile_l2_rules(rules), 256, stride=8)
        assert matcher.lookup(self._query()).value == "mgmt"
        assert matcher.lookup(self._query(dst_mac=parse_mac("00:11:22:33:44:56"))).value == "rest"

    def test_oui_prefix_match(self):
        oui_care = 0xFFFFFF000000
        rules = [
            L2Rule(priority=2, value="vendor", src_mac=(0x667788000000, oui_care)),
            L2Rule(priority=1, value="rest"),
        ]
        matcher = PalmtriePlus.build(compile_l2_rules(rules), 256, stride=8)
        assert matcher.lookup(self._query()).value == "vendor"
        assert matcher.lookup(self._query(src_mac=parse_mac("00:77:88:99:aa:bb"))).value == "rest"

    def test_vlan_and_ethertype(self):
        rules = [
            L2Rule(priority=3, value="v100-ip", vlan=100, ethertype=EtherType.IPV4),
            L2Rule(priority=2, value="arp", ethertype=EtherType.ARP),
            L2Rule(priority=1, value="rest"),
        ]
        matcher = PalmtriePlus.build(compile_l2_rules(rules), 256, stride=8)
        assert matcher.lookup(self._query()).value == "v100-ip"
        assert matcher.lookup(self._query(vlan=200)).value == "rest"
        assert matcher.lookup(self._query(ethertype=EtherType.ARP, vlan=5)).value == "arp"

    def test_inner_l3l4_rule(self):
        inner = parse_rule("permit tcp any 192.0.2.0/24 established")
        rules = [
            L2Rule(priority=2, value="est", vlan=100, inner=inner),
            L2Rule(priority=1, value="rest"),
        ]
        entries = compile_l2_rules(rules)
        assert len(entries) == 3  # established doubles the inner rule
        matcher = PalmtriePlus.build(entries, 256, stride=8)
        assert matcher.lookup(self._query(tcp_flags=0x10)).value == "est"
        assert matcher.lookup(self._query(tcp_flags=0x02)).value == "rest"
        assert matcher.lookup(self._query(tcp_flags=0x10, vlan=101)).value == "rest"

    def test_validation(self):
        with pytest.raises(ValueError, match="ethertype"):
            L2Rule(priority=1, value=0, ethertype=1 << 16)
        with pytest.raises(ValueError, match="VLAN"):
            L2Rule(priority=1, value=0, vlan=4096)
        with pytest.raises(ValueError, match="outside the care mask"):
            L2Rule(priority=1, value=0, dst_mac=(0xFF, 0x00))
        with pytest.raises(ValueError, match="constraint"):
            L2Rule(priority=1, value=0, src_mac=(1 << 48, (1 << 48) - 1))
