"""Unit tests for the basic Palmtrie (repro.core.basic, Algorithm 1)."""

import pytest

from helpers import assert_same_result, oracle_lookup, random_entries, table1_entries
from repro.core.basic import BasicPalmtrie
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey


@pytest.fixture()
def table1():
    return BasicPalmtrie.build(table1_entries(), 8)


class TestPaperWalkthrough:
    def test_query_01110101_returns_entry_5(self, table1):
        # §3.3's worked example: 01110101 matches entries 5 and 8;
        # entry 5 has priority 7 > 2 and wins.
        result = table1.lookup(0b01110101)
        assert result is not None
        assert result.value == 5
        assert result.priority == 7

    def test_full_query_space_against_oracle(self, table1):
        entries = table1_entries()
        for query in range(256):
            assert_same_result(oracle_lookup(entries, query), table1.lookup(query))

    def test_counted_agrees_with_plain(self, table1):
        for query in range(256):
            plain = table1.lookup(query)
            counted = table1.profile_lookup(query)
            assert (plain is None) == (counted is None)
            if plain is not None:
                assert plain.priority == counted.priority


class TestStructure:
    def test_empty(self):
        trie = BasicPalmtrie(8)
        assert trie.lookup(0) is None
        assert len(trie) == 0
        assert trie.depth() == 0

    def test_patricia_node_bound(self, table1):
        internal, leaves = table1.node_count()
        assert leaves == 9
        assert internal <= leaves - 1  # ternary branching can need fewer

    def test_entries_roundtrip(self, table1):
        values = sorted(e.value for e in table1.entries())
        assert values == list(range(1, 10))

    def test_memory_model_positive_and_linear_ish(self):
        small = BasicPalmtrie.build(random_entries(50, 16, seed=1), 16)
        large = BasicPalmtrie.build(random_entries(500, 16, seed=2), 16)
        assert 5 * small.memory_bytes() < large.memory_bytes() < 20 * small.memory_bytes()

    def test_key_length_mismatch(self):
        trie = BasicPalmtrie(8)
        with pytest.raises(ValueError, match="key length"):
            trie.insert(TernaryEntry(TernaryKey.wildcard(4), 0, 1))


class TestDuplicateKeys:
    def test_same_key_highest_priority_wins(self):
        key = TernaryKey.from_string("01**")
        trie = BasicPalmtrie(4)
        trie.insert(TernaryEntry(key, "low", 1))
        trie.insert(TernaryEntry(key, "high", 9))
        trie.insert(TernaryEntry(key, "mid", 5))
        assert trie.lookup(0b0100).value == "high"
        assert len(trie) == 3

    def test_delete_removes_all_entries_of_key(self):
        key = TernaryKey.from_string("01**")
        trie = BasicPalmtrie(4)
        trie.insert(TernaryEntry(key, "a", 1))
        trie.insert(TernaryEntry(key, "b", 2))
        assert trie.delete(key)
        assert len(trie) == 0
        assert trie.lookup(0b0100) is None


class TestDeletion:
    def test_delete_missing(self, table1):
        assert not table1.delete(TernaryKey.from_string("00000000"))

    def test_delete_reroutes_to_lower_priority(self, table1):
        # Removing entry 5 exposes entry 8 for query 01110101.
        assert table1.delete(TernaryKey.from_string("0*1101**"))
        result = table1.lookup(0b01110101)
        assert result.value == 8

    def test_delete_all(self):
        entries = table1_entries()
        trie = BasicPalmtrie.build(entries, 8)
        for entry in entries:
            assert trie.delete(entry.key)
        assert len(trie) == 0
        assert all(trie.lookup(q) is None for q in range(256))

    def test_delete_key_length_mismatch(self, table1):
        with pytest.raises(ValueError, match="key length"):
            table1.delete(TernaryKey.wildcard(4))


class TestWildcardHeavy:
    def test_all_wildcard_entry_is_floor(self):
        trie = BasicPalmtrie(8)
        trie.insert(TernaryEntry(TernaryKey.wildcard(8), "any", 0))
        trie.insert(TernaryEntry(TernaryKey.exact(7, 8), "seven", 5))
        assert trie.lookup(7).value == "seven"
        assert trie.lookup(8).value == "any"

    def test_incremental_matches_bulk(self):
        entries = random_entries(120, 12, seed=9)
        bulk = BasicPalmtrie.build(entries, 12)
        incremental = BasicPalmtrie(12)
        for entry in entries:
            incremental.insert(entry)
        for query in range(0, 1 << 12, 17):
            assert_same_result(bulk.lookup(query), incremental.lookup(query))
