"""Unit tests for workload generators (repro.workloads)."""

import pytest

from repro.acl.layout import LAYOUT_V4, TCP_SYN
from repro.acl.rule import Action, Protocol
from repro.workloads.campus import (
    ENTRIES_PER_PREFIX,
    RULES_PER_PREFIX,
    campus_acl,
    campus_rules,
)
from repro.workloads.classbench import (
    ACL_SEED,
    FW_SEED,
    IPC_SEED,
    PROFILES,
    classbench_acl,
    classbench_rules,
)
from repro.workloads.traffic import (
    pareto_trace,
    query_matching_entry,
    reverse_byte_scan,
    uniform_traffic,
)


class TestCampus:
    def test_rule_count_formula(self):
        # §4.1: the ACL of D_q has 17 * 2**q rules.
        for q in (0, 1, 3):
            assert len(campus_rules(q)) == RULES_PER_PREFIX << q

    def test_entry_count_formula(self):
        # ... and 18 * 2**q ternary entries (established doubles).
        for q in (0, 2):
            assert len(campus_acl(q).entries) == ENTRIES_PER_PREFIX << q

    def test_rules_cover_10_slash_8(self):
        rules = campus_rules(1)
        dst_prefixes = {r.dst_prefix for r in rules if r.dst_prefix[1] == 9}
        assert dst_prefixes == {(0x0A000000, 9), (0x0A800000, 9)}

    def test_outbound_rule_first_per_prefix(self):
        rules = campus_rules(0)
        assert rules[0].protocol is Protocol.IP
        assert rules[0].src_prefix == (0x0A000000, 8)
        assert rules[0].dst_prefix == (0, 0)

    def test_final_rule_is_deny(self):
        rules = campus_rules(0)
        assert rules[-1].action is Action.DENY

    def test_established_rule_present(self):
        rules = campus_rules(0)
        assert sum(1 for r in rules if r.established) == 1

    def test_dmz_and_services_slash_27(self):
        rules = campus_rules(0)
        dmz = [r for r in rules if r.dst_prefix[1] == 27]
        assert len(dmz) == 11  # 1 DMZ rule + 10 service rules

    def test_q_out_of_range(self):
        with pytest.raises(ValueError):
            campus_rules(-1)
        with pytest.raises(ValueError):
            campus_rules(17)

    def test_deterministic(self):
        assert campus_rules(2) == campus_rules(2)


class TestClassBench:
    def test_profiles_registry(self):
        assert set(PROFILES) == {"acl", "fw", "ipc"}
        assert PROFILES["fw"] is FW_SEED

    def test_rule_count(self):
        assert len(classbench_rules(ACL_SEED, 150)) == 150

    def test_deterministic_per_seed(self):
        a = classbench_rules(IPC_SEED, 50, seed=1)
        b = classbench_rules(IPC_SEED, 50, seed=1)
        c = classbench_rules(IPC_SEED, 50, seed=2)
        assert a == b
        assert a != c

    def test_profiles_differ(self):
        assert classbench_rules(ACL_SEED, 50) != classbench_rules(FW_SEED, 50)

    def test_fw_has_more_wildcards_than_acl(self):
        # The published structural contrast: firewall sets are wilder.
        acl = classbench_rules(ACL_SEED, 400)
        fw = classbench_rules(FW_SEED, 400)

        def wildcard_fraction(rules):
            return sum(1 for r in rules if r.src_prefix == (0, 0)) / len(rules)

        assert wildcard_fraction(fw) > wildcard_fraction(acl)

    def test_acl_dst_prefixes_are_specific(self):
        rules = classbench_rules(ACL_SEED, 400)
        specific = sum(1 for r in rules if r.dst_prefix[1] >= 24)
        assert specific > len(rules) * 0.6

    def test_compiles_to_valid_entries(self):
        acl = classbench_acl("ipc", 100)
        assert len(acl.entries) >= 100
        assert all(e.key.length == 128 for e in acl.entries)

    def test_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown profile"):
            classbench_acl("wan", 10)

    def test_bad_count(self):
        with pytest.raises(ValueError, match="positive"):
            classbench_rules(ACL_SEED, 0)


class TestSeedProfiles:
    def test_roundtrip(self, tmp_path):
        from repro.workloads.classbench import load_profile, save_profile

        path = str(tmp_path / "fw.seed")
        save_profile(FW_SEED, path)
        assert load_profile(path) == FW_SEED

    def test_loaded_profile_generates(self, tmp_path):
        from repro.workloads.classbench import load_profile, save_profile

        path = str(tmp_path / "acl.seed")
        save_profile(ACL_SEED, path)
        loaded = load_profile(path)
        assert classbench_rules(loaded, 30) == classbench_rules(ACL_SEED, 30)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "bad.seed"
        path.write_text("name x\n")
        from repro.workloads.classbench import load_profile

        with pytest.raises(ValueError, match="missing fields"):
            load_profile(str(path))

    def test_unknown_key(self, tmp_path):
        path = tmp_path / "bad.seed"
        path.write_text("bogus 1\n")
        from repro.workloads.classbench import load_profile

        with pytest.raises(ValueError, match="unknown key"):
            load_profile(str(path))

    def test_malformed_pair(self, tmp_path):
        path = tmp_path / "bad.seed"
        path.write_text("protocols tcp-0.5\n")
        from repro.workloads.classbench import load_profile

        with pytest.raises(ValueError, match="bad.seed:1"):
            load_profile(str(path))


class TestTraffic:
    def test_query_matching_entry(self):
        import random

        acl = campus_acl(0)
        rng = random.Random(0)
        for entry in acl.entries:
            for _ in range(5):
                assert entry.matches(query_matching_entry(entry, rng))

    def test_uniform_queries_match_table(self):
        acl = campus_acl(0)
        queries = uniform_traffic(acl.entries, 200)
        assert len(queries) == 200
        from repro.baselines.sorted_list import SortedListMatcher

        oracle = SortedListMatcher.build(acl.entries, 128)
        assert all(oracle.lookup(q) is not None for q in queries)

    def test_uniform_empty_table(self):
        with pytest.raises(ValueError, match="empty"):
            uniform_traffic([], 10)

    def test_uniform_deterministic(self):
        acl = campus_acl(0)
        assert uniform_traffic(acl.entries, 50, seed=3) == uniform_traffic(
            acl.entries, 50, seed=3
        )

    def test_scan_pattern_fields(self):
        queries = reverse_byte_scan(10, seed=1)
        for query in queries:
            fields = LAYOUT_V4.unpack_query(query)
            assert fields["proto"] == 6
            assert fields["dst_port"] == 5060
            assert fields["tcp_flags"] == TCP_SYN
            assert fields["dst_ip"] >> 24 == 10

    def test_scan_reverse_byte_sequence(self):
        # The paper's example: ..., 10.255.0.0, 10.0.1.0, 10.1.1.0, ...
        queries = reverse_byte_scan(3, start=255)
        dsts = [LAYOUT_V4.unpack_query(q)["dst_ip"] for q in queries]
        assert dsts[0] == 0x0AFF0000  # 10.255.0.0
        assert dsts[1] == 0x0A000100  # 10.0.1.0
        assert dsts[2] == 0x0A010100  # 10.1.1.0

    def test_scan_wraps_24_bits(self):
        (query,) = reverse_byte_scan(1, start=1 << 24)
        assert LAYOUT_V4.unpack_query(query)["dst_ip"] == 0x0A000000

    def test_pareto_trace_length_and_membership(self):
        acl = campus_acl(0)
        trace = pareto_trace(acl.entries, 300)
        assert len(trace) == 300
        from repro.baselines.sorted_list import SortedListMatcher

        oracle = SortedListMatcher.build(acl.entries, 128)
        assert all(oracle.lookup(q) is not None for q in trace)

    def test_pareto_trace_has_repeats(self):
        acl = campus_acl(0)
        trace = pareto_trace(acl.entries, 300, alpha=0.5)
        assert len(set(trace)) < len(trace)

    def test_pareto_validation(self):
        acl = campus_acl(0)
        with pytest.raises(ValueError, match="alpha"):
            pareto_trace(acl.entries, 10, alpha=0)
        with pytest.raises(ValueError, match="empty"):
            pareto_trace([], 10)
