"""The serving layer: flow cache, batched lookups, and the unified API.

The load-bearing property is differential: for every matcher kind in
the public registry, the scalar path, the batched path, the cached
engine paths, and the brute-force oracle must all agree — including
after ``insert``/``delete`` on the incremental structures (the cache
must never serve a stale verdict).
"""

from __future__ import annotations

import random
import warnings

import pytest

from helpers import assert_same_result, oracle_lookup, random_entries, table1_entries

from repro import MATCHER_KINDS, ClassificationEngine, EngineConfig, FlowCache, build_matcher
from repro.core.plus import PalmtriePlus
from repro.core.table import TernaryEntry, matcher_kinds
from repro.core.ternary import TernaryKey

KEY_LENGTH = 16
#: kinds whose insert() raises (build-only structures)
BUILD_ONLY = {"dpdk-acl", "efficuts"}


def _queries(count: int, seed: int = 11) -> list[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(KEY_LENGTH) for _ in range(count)]


# ----------------------------------------------------------------------
# The registry itself
# ----------------------------------------------------------------------

class TestRegistry:
    def test_registry_is_public_and_complete(self):
        assert set(MATCHER_KINDS) == {
            "sorted-list", "palmtrie-basic", "palmtrie", "palmtrie-plus",
            "frozen", "dpdk-acl", "efficuts", "adaptive", "tcam", "vectorized",
            "learned",
        }
        for cls in MATCHER_KINDS.values():
            assert isinstance(cls, type)

    def test_registry_returns_a_copy(self):
        kinds = matcher_kinds()
        kinds.clear()
        assert matcher_kinds()  # the registry itself is untouched

    def test_build_matcher_accepts_class_objects(self):
        entries = table1_entries()
        by_name = build_matcher("palmtrie-plus", entries, 8)
        by_class = build_matcher(PalmtriePlus, entries, 8)
        assert type(by_name) is type(by_class)
        for query in range(256):
            assert_same_result(by_name.lookup(query), by_class.lookup(query))

    def test_build_matcher_rejects_non_matcher_class(self):
        with pytest.raises(TypeError):
            build_matcher(dict, table1_entries(), 8)


# ----------------------------------------------------------------------
# Differential: every kind, every path
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kind", sorted(MATCHER_KINDS))
class TestEveryKind:
    def test_batch_matches_scalar_and_oracle(self, kind):
        entries = random_entries(60, KEY_LENGTH, seed=3)
        matcher = build_matcher(kind, entries, KEY_LENGTH)
        queries = _queries(300)
        batched = matcher.lookup_batch(queries)
        assert len(batched) == len(queries)
        for query, got in zip(queries, batched):
            expected = oracle_lookup(entries, query)
            assert_same_result(expected, got)
            assert_same_result(expected, matcher.lookup(query))

    def test_engine_paths_match_oracle(self, kind):
        entries = random_entries(60, KEY_LENGTH, seed=4)
        engine = ClassificationEngine(build_matcher(kind, entries, KEY_LENGTH), EngineConfig(cache_size=64))
        queries = _queries(400, seed=5)
        # Twice through, so the second pass is served (partly) from cache.
        for _ in range(2):
            for query, got in zip(queries, engine.lookup_batch(queries)):
                assert_same_result(oracle_lookup(entries, query), got)
            for query in queries[:100]:
                assert_same_result(oracle_lookup(entries, query), engine.lookup(query))
        assert engine.stats.cache_hits > 0

    def test_cache_stays_correct_across_updates(self, kind):
        if kind in BUILD_ONLY:
            pytest.skip(f"{kind} is build-only (no incremental updates)")
        entries = random_entries(40, KEY_LENGTH, seed=6)
        engine = ClassificationEngine(build_matcher(kind, entries, KEY_LENGTH), EngineConfig(cache_size=256))
        queries = _queries(200, seed=7)
        engine.lookup_batch(queries)  # warm the cache

        # A high-priority catch-some rule: cached verdicts it matches
        # must be re-resolved, the rest may stay cached.
        key = TernaryKey.from_string("01" + "*" * (KEY_LENGTH - 2))
        new = TernaryEntry(key, 999, 10_000)
        engine.insert(new)
        entries = entries + [new]
        for query, got in zip(queries, engine.lookup_batch(queries)):
            assert_same_result(oracle_lookup(entries, query), got)

        assert engine.delete(key)
        entries = entries[:-1]
        for query, got in zip(queries, engine.lookup_batch(queries)):
            assert_same_result(oracle_lookup(entries, query), got)
        assert not engine.delete(key)  # already gone; no-op

    # -- lookup_batch edge cases ----------------------------------------

    def test_empty_batch(self, kind):
        entries = random_entries(20, KEY_LENGTH, seed=8)
        matcher = build_matcher(kind, entries, KEY_LENGTH)
        assert matcher.lookup_batch([]) == []
        engine = ClassificationEngine(matcher, EngineConfig(cache_size=8))
        assert engine.lookup_batch([]) == []
        assert engine.last_batch.queries == 0
        assert engine.last_batch.hit_ratio == 0.0

    def test_all_duplicate_batch(self, kind):
        entries = random_entries(30, KEY_LENGTH, seed=9)
        matcher = build_matcher(kind, entries, KEY_LENGTH)
        query = _queries(1, seed=10)[0]
        expected = oracle_lookup(entries, query)
        for got in matcher.lookup_batch([query] * 64):
            assert_same_result(expected, got)
        engine = ClassificationEngine(build_matcher(kind, entries, KEY_LENGTH), EngineConfig(cache_size=8))
        for got in engine.lookup_batch([query] * 64):
            assert_same_result(expected, got)
        # one distinct query: the matcher is asked exactly once
        assert engine.last_batch.matcher_queries == 1
        # a second identical burst is answered entirely from the cache
        for got in engine.lookup_batch([query] * 64):
            assert_same_result(expected, got)
        assert engine.last_batch.cache_hits == 64

    def test_batch_equal_to_cache_size(self, kind):
        entries = random_entries(30, KEY_LENGTH, seed=12)
        size = 32
        engine = ClassificationEngine(build_matcher(kind, entries, KEY_LENGTH), EngineConfig(cache_size=size))
        queries = list(dict.fromkeys(_queries(200, seed=13)))[:size]
        assert len(queries) == size
        engine.lookup_batch(queries)
        assert len(engine.cache) == size
        assert engine.stats.cache_evictions == 0
        # the same burst again is answered entirely from the cache
        for query, got in zip(queries, engine.lookup_batch(queries)):
            assert_same_result(oracle_lookup(entries, query), got)
        assert engine.last_batch.cache_hits == size

    def test_batches_interleaved_with_updates(self, kind):
        if kind in BUILD_ONLY:
            pytest.skip(f"{kind} is build-only (no incremental updates)")
        entries = random_entries(25, KEY_LENGTH, seed=14)
        matcher = build_matcher(kind, entries, KEY_LENGTH)
        engine = ClassificationEngine(matcher, EngineConfig(cache_size=64))
        queries = _queries(120, seed=15)
        rng = random.Random(16)
        for round_ in range(4):
            for query, got in zip(queries, engine.lookup_batch(queries)):
                assert_same_result(oracle_lookup(entries, query), got)
            if round_ % 2 == 0:
                # a key with the low 4 bits wild, the rest exact
                key = TernaryKey(rng.getrandbits(KEY_LENGTH) & ~0xF, 0xF, KEY_LENGTH)
                new = TernaryEntry(key, 500 + round_, 5_000 + round_)
                engine.insert(new)
                entries = entries + [new]
            else:
                victim = entries[-1]
                assert engine.delete(victim.key)
                entries = entries[:-1]


# ----------------------------------------------------------------------
# FlowCache mechanics
# ----------------------------------------------------------------------

class TestFlowCache:
    def test_lru_eviction_order(self):
        cache = FlowCache(2)
        e = table1_entries()[0]
        cache.put(1, e)
        cache.put(2, e)
        cache.get(1)        # 1 is now most recent
        assert cache.put(3, e) == 1
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_negative_results_are_cached(self):
        cache = FlowCache(4)
        cache.put(7, None)
        assert 7 in cache
        assert cache.get(7) is None

    def test_zero_capacity_disables(self):
        cache = FlowCache(0)
        cache.put(1, None)
        assert len(cache) == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            FlowCache(-1)

    def test_invalidate_only_matching_queries(self):
        cache = FlowCache(8)
        cache.put(0b0101, None)
        cache.put(0b1111, None)
        assert cache.invalidate(TernaryKey.from_string("01**")) == 1
        assert 0b0101 not in cache and 0b1111 in cache

    def test_invalidate_many_is_one_sweep_over_all_keys(self):
        cache = FlowCache(8)
        cache.put(0b0101, None)
        cache.put(0b1111, None)
        cache.put(0b1000, None)
        keys = [TernaryKey.from_string("01**"), TernaryKey.from_string("11**")]
        assert cache.invalidate_many(keys) == 2
        assert 0b1000 in cache and len(cache) == 1
        assert cache.invalidate_many([]) == 0


# ----------------------------------------------------------------------
# Engine counters and plumbing
# ----------------------------------------------------------------------

class TestEngineObservability:
    def test_counters_and_report(self):
        entries = table1_entries()
        engine = ClassificationEngine(build_matcher("palmtrie-plus", entries, 8), EngineConfig(cache_size=16))
        engine.lookup_batch(list(range(32)))
        engine.lookup_batch(list(range(32)))   # all hits... except evicted rows
        stats = engine.stats
        assert stats.lookups == 64
        assert stats.cache_hits + stats.cache_misses == 64
        assert stats.cache_evictions >= 16     # 32 distinct queries, capacity 16
        report = engine.report()
        assert report["batches"] == 2
        assert report["cache_entries"] == 16
        assert 0.0 <= report["cache_hit_ratio"] <= 1.0
        assert report["queries_per_second"] == engine.queries_per_second()
        assert engine.last_batch is not None
        assert engine.last_batch.queries == 32
        engine.reset_stats()
        assert engine.stats.lookups == 0 and engine.batches == 0

    def test_batch_report_dedupes_repeats(self):
        engine = ClassificationEngine(build_matcher("sorted-list", table1_entries(), 8), EngineConfig(cache_size=0))
        engine.lookup_batch([5, 5, 5, 9, 9])
        assert engine.last_batch.matcher_queries == 2  # 5 and 9, deduplicated
        assert engine.last_batch.cache_hits == 0       # cache disabled

    def test_scalar_only_duck_type_falls_back(self):
        class ScalarOnly:
            name = "scalar-only"
            def lookup(self, query):
                return None
        engine = ClassificationEngine(ScalarOnly(), EngineConfig(cache_size=4))
        assert engine.lookup_batch([1, 2, 3]) == [None, None, None]

    def test_rejects_non_matcher(self):
        with pytest.raises(TypeError):
            ClassificationEngine(object())

    def test_invalidate_all(self):
        engine = ClassificationEngine(build_matcher("sorted-list", table1_entries(), 8), EngineConfig(cache_size=8))
        engine.lookup_batch([1, 2, 3])
        assert engine.invalidate_all() == 3
        assert len(engine.cache) == 0


# ----------------------------------------------------------------------
# The transactional update plane
# ----------------------------------------------------------------------

UPDATABLE_KINDS = sorted(set(MATCHER_KINDS) - BUILD_ONLY)


class TestUpdatePlane:
    @pytest.mark.parametrize("kind", UPDATABLE_KINDS)
    def test_apply_updates_matches_oracle(self, kind):
        entries = random_entries(40, KEY_LENGTH, seed=21)
        engine = ClassificationEngine(build_matcher(kind, entries, KEY_LENGTH), EngineConfig(cache_size=128))
        queries = _queries(200, seed=22)
        engine.lookup_batch(queries)  # warm the cache before churning
        new = [
            TernaryEntry(TernaryKey.from_string("10" + "*" * (KEY_LENGTH - 2)), 900, 9_000),
            TernaryEntry(TernaryKey.exact(queries[0], KEY_LENGTH), 901, 9_001),
        ]
        victims = [entries[0].key, entries[1].key]
        report = engine.apply_updates(
            [("insert", new[0]), ("insert", new[1])]
            + [("delete", key) for key in victims]
        )
        assert report.inserted == 2
        assert report.deleted == 2
        assert report.missing_deletes == 0
        assert report.ops == 4
        entries = [e for e in entries if e.key not in victims] + new
        for query, got in zip(queries, engine.lookup_batch(queries)):
            assert_same_result(oracle_lookup(entries, query), got)

    def test_op_normalization_accepts_bare_entries_and_keys(self):
        entries = random_entries(10, KEY_LENGTH, seed=23)
        engine = ClassificationEngine(build_matcher("palmtrie-plus", entries, KEY_LENGTH))
        extra = TernaryEntry(TernaryKey.exact(3, KEY_LENGTH), 99, 999)
        report = engine.apply_updates([extra, entries[0].key, ("delete", entries[1])])
        assert report.inserted == 1 and report.deleted == 2
        assert_same_result(engine.lookup(3), extra)

    def test_op_normalization_rejects_garbage(self):
        engine = ClassificationEngine(
            build_matcher("palmtrie-plus", random_entries(5, KEY_LENGTH, seed=24), KEY_LENGTH)
        )
        with pytest.raises(TypeError):
            engine.apply_updates([42])
        with pytest.raises(ValueError):
            engine.apply_updates([("upsert", None)])
        with pytest.raises(TypeError):
            engine.apply_updates([("insert", TernaryKey.exact(1, KEY_LENGTH))])

    def test_missing_deletes_are_counted_not_applied(self):
        entries = random_entries(10, KEY_LENGTH, seed=25)
        engine = ClassificationEngine(build_matcher("palmtrie-plus", entries, KEY_LENGTH))
        absent = TernaryKey.from_string("0" * KEY_LENGTH)
        report = engine.apply_updates([("delete", absent)])
        assert report.deleted == 0 and report.missing_deletes == 1
        assert len(engine.matcher) == len(entries)
        # an all-miss transaction does not count as applied updates
        assert engine.updates_applied == 0
        assert engine.update_batches == 1

    def test_update_batch_context_manager(self):
        entries = random_entries(15, KEY_LENGTH, seed=26)
        engine = ClassificationEngine(build_matcher("palmtrie-plus", entries, KEY_LENGTH))
        extra = TernaryEntry(TernaryKey.exact(5, KEY_LENGTH), 77, 777)
        with engine.update_batch() as batch:
            batch.insert(extra)
            batch.delete(entries[0].key)
            # nothing is applied until the block exits
            assert engine.update_batches == 0
        assert batch.report is not None
        assert batch.report.inserted == 1 and batch.report.deleted == 1
        assert engine.update_batches == 1
        assert_same_result(engine.lookup(5), extra)

    def test_update_batch_aborts_on_exception(self):
        entries = random_entries(15, KEY_LENGTH, seed=27)
        engine = ClassificationEngine(build_matcher("palmtrie-plus", entries, KEY_LENGTH))
        with pytest.raises(RuntimeError):
            with engine.update_batch() as batch:
                batch.insert(TernaryEntry(TernaryKey.exact(5, KEY_LENGTH), 1, 1))
                raise RuntimeError("abort")
        assert batch.report is None
        assert engine.update_batches == 0
        assert engine.lookup(5) is None or engine.lookup(5).value != 1

    @pytest.mark.parametrize("auto_freeze", [False, True])
    def test_direct_matcher_mutation_never_serves_stale(self, auto_freeze):
        """The silent-stale hazard: callers mutating ``engine.matcher``
        directly must still get fresh verdicts (generation check)."""
        entries = random_entries(30, KEY_LENGTH, seed=28)
        engine = ClassificationEngine(build_matcher("palmtrie-plus", entries, KEY_LENGTH), EngineConfig(cache_size=64, auto_freeze=auto_freeze))
        queries = _queries(50, seed=29)
        engine.lookup_batch(queries)  # warm cache (and freeze the plane)
        if auto_freeze:
            assert engine.report()["frozen_plane_active"]
        override = TernaryEntry(TernaryKey.wildcard(KEY_LENGTH), 12345, 10**6)
        engine.matcher.insert(override)  # behind the engine's back
        for query in queries:
            got = engine.lookup(query)
            assert got is not None and got.value == 12345
        assert engine.report()["lazy_invalidations"] >= 1

    def test_lazy_invalidation_above_threshold(self):
        entries = random_entries(20, KEY_LENGTH, seed=30)
        engine = ClassificationEngine(build_matcher("palmtrie-plus", entries, KEY_LENGTH), EngineConfig(cache_size=256, invalidation_threshold=4))
        queries = list(dict.fromkeys(_queries(64, seed=31)))
        engine.lookup_batch(queries)
        assert len(engine.cache) > 4
        report = engine.apply_updates(
            [TernaryEntry(TernaryKey.wildcard(KEY_LENGTH), 1, -1)]
        )
        assert report.deferred_invalidation
        assert report.cache_rows_invalidated == 0
        # the deferred sweep lands at the next lookup, in one clear
        engine.lookup(queries[0])
        assert engine.report()["lazy_invalidations"] == 1
        assert len(engine.cache) == 1  # only the re-resolved query

    def test_threshold_none_always_sweeps_targeted(self):
        entries = random_entries(20, KEY_LENGTH, seed=32)
        engine = ClassificationEngine(build_matcher("palmtrie-plus", entries, KEY_LENGTH), EngineConfig(cache_size=256, invalidation_threshold=None))
        queries = list(dict.fromkeys(_queries(64, seed=33)))
        engine.lookup_batch(queries)
        rows = len(engine.cache)
        report = engine.apply_updates(
            [TernaryEntry(TernaryKey.wildcard(KEY_LENGTH), 1, -1)]
        )
        assert not report.deferred_invalidation
        assert report.cache_rows_invalidated == rows  # wildcard hits every row
        assert engine.report()["targeted_invalidations"] == 1
        assert engine.report()["lazy_invalidations"] == 0

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            ClassificationEngine(build_matcher("sorted-list", table1_entries(), 8), EngineConfig(invalidation_threshold=-1))

    def test_replace_matcher_preserves_cumulative_stats(self):
        entries = random_entries(20, KEY_LENGTH, seed=34)
        engine = ClassificationEngine(build_matcher("palmtrie-plus", entries, KEY_LENGTH), EngineConfig(cache_size=32))
        queries = _queries(40, seed=35)
        engine.lookup_batch(queries)
        lookups_before = engine.stats.lookups
        last_batch = engine.last_batch
        replacement = random_entries(10, KEY_LENGTH, seed=36)
        engine.replace_matcher(build_matcher("palmtrie-plus", replacement, KEY_LENGTH))
        assert engine.stats.lookups == lookups_before
        assert engine.last_batch is last_batch
        assert engine.policy_swaps == 1
        assert len(engine.cache) == 0
        for query in queries:
            assert_same_result(oracle_lookup(replacement, query), engine.lookup(query))

    def test_replace_matcher_rejects_non_matcher(self):
        engine = ClassificationEngine(build_matcher("sorted-list", table1_entries(), 8))
        with pytest.raises(TypeError):
            engine.replace_matcher(object())

    def test_matcher_assignment_is_a_policy_swap(self):
        """``engine.matcher = B`` must behave exactly like
        ``replace_matcher(B)``: epoch bump, flushed cache, no stale
        verdicts — even when B's generation counter equals A's (the
        generation stamp alone cannot distinguish two fresh policies)."""
        entries = random_entries(20, KEY_LENGTH, seed=34)
        engine = ClassificationEngine(build_matcher("palmtrie-plus", entries, KEY_LENGTH), EngineConfig(cache_size=32))
        queries = _queries(40, seed=35)
        engine.lookup_batch(queries)
        replacement_entries = random_entries(10, KEY_LENGTH, seed=36)
        replacement = build_matcher("palmtrie-plus", replacement_entries, KEY_LENGTH)
        assert replacement.generation == engine.matcher.generation
        engine.matcher = replacement
        assert engine.epoch == 1
        assert engine.policy_swaps == 1
        assert len(engine.cache) == 0
        for query in queries:
            assert_same_result(
                oracle_lookup(replacement_entries, query), engine.lookup(query)
            )

    def test_refresh_pays_deferred_work_eagerly(self):
        entries = random_entries(20, KEY_LENGTH, seed=37)
        engine = ClassificationEngine(build_matcher("palmtrie-plus", entries, KEY_LENGTH), EngineConfig(auto_freeze=True))
        engine.lookup(0)  # freeze the plane
        engine.apply_updates([TernaryEntry(TernaryKey.exact(9, KEY_LENGTH), 1, 1)])
        assert not engine.report()["frozen_plane_active"]
        engine.refresh()
        assert engine.report()["frozen_plane_active"]
        assert not engine.matcher._dirty

    def test_report_exposes_update_metrics(self):
        entries = random_entries(10, KEY_LENGTH, seed=38)
        engine = ClassificationEngine(build_matcher("palmtrie-plus", entries, KEY_LENGTH))
        engine.apply_updates([TernaryEntry(TernaryKey.exact(1, KEY_LENGTH), 1, 1)])
        report = engine.report()
        for field in (
            "updates_applied", "update_batches", "cache_rows_invalidated",
            "targeted_invalidations", "lazy_invalidations", "policy_swaps",
            "invalidation_threshold", "generation", "plane_generation",
        ):
            assert field in report
        assert report["updates_applied"] == 1
        assert report["update_batches"] == 1
        assert report["generation"] == engine.matcher.generation

    def test_generation_bumps_on_content_changes_only(self):
        matcher = build_matcher(
            "palmtrie-plus", random_entries(10, KEY_LENGTH, seed=39), KEY_LENGTH
        )
        generation = matcher.generation
        matcher.compile()
        assert matcher.generation == generation  # recompiles don't bump
        matcher.insert(TernaryEntry(TernaryKey.exact(2, KEY_LENGTH), 1, 1))
        assert matcher.generation == generation + 1
        assert not matcher.delete(TernaryKey.from_string("1" * KEY_LENGTH))
        assert matcher.generation == generation + 1  # failed delete: no bump
        assert matcher.delete(TernaryKey.exact(2, KEY_LENGTH))
        assert matcher.generation == generation + 2

    def test_qps_clamps_instead_of_reporting_zero(self):
        from repro.engine import BatchReport

        sub_tick = BatchReport(queries=100, matcher_queries=1, cache_hits=99, seconds=0.0)
        assert sub_tick.queries_per_second > 0
        empty = BatchReport(queries=0, matcher_queries=0, cache_hits=0, seconds=0.0)
        assert empty.queries_per_second == 0.0
        engine = ClassificationEngine(build_matcher("sorted-list", table1_entries(), 8))
        assert engine.queries_per_second() == 0.0  # nothing batched yet
        engine.lookup_batch([1])
        engine.elapsed_seconds = 0.0  # force the sub-tick case
        assert engine.queries_per_second() > 0


# ----------------------------------------------------------------------
# The deprecation shim
# ----------------------------------------------------------------------

class TestDeprecatedShim:
    def test_lookup_counted_warns_but_works(self):
        matcher = build_matcher("sorted-list", table1_entries(), 8)
        matcher.stats.reset()
        with pytest.warns(DeprecationWarning, match="lookup_counted"):
            result = matcher.lookup_counted(0b00010101)
        assert_same_result(oracle_lookup(table1_entries(), 0b00010101), result)
        assert matcher.stats.lookups == 1

    def test_profile_lookup_does_not_warn(self):
        matcher = build_matcher("sorted-list", table1_entries(), 8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            matcher.profile_lookup(0b00010101)
