"""Differential tests: every matcher against the sorted-list oracle.

This is the paper's own validation methodology (§4: "we have run tests
that compare the lookup results of Palmtries with those of the sorted
list and have confirmed they match").  Extended here to all baselines,
several strides, random tables, and ACL-shaped workloads.
"""

import random

import pytest

from helpers import assert_same_result, oracle_lookup, random_entries
from repro.baselines.dpdk_acl import DpdkStyleAcl
from repro.baselines.efficuts import EffiCutsClassifier
from repro.baselines.sorted_list import SortedListMatcher
from repro.baselines.tcam import TcamModel
from repro.core.adaptive import AdaptiveMatcher
from repro.core.basic import BasicPalmtrie
from repro.core.multibit import MultibitPalmtrie
from repro.core.plus import PalmtriePlus
from repro.core.table import build_matcher, matcher_kinds
from repro.config import EngineConfig
from repro.engine import ClassificationEngine
from repro.workloads.campus import campus_acl
from repro.workloads.classbench import classbench_acl
from repro.workloads.traffic import pareto_trace, reverse_byte_scan, uniform_traffic

KEY_LENGTH = 16


def _matchers(entries, key_length):
    yield BasicPalmtrie.build(entries, key_length)
    for stride in (1, 3, 4, 7, 8):
        yield MultibitPalmtrie.build(entries, key_length, stride=stride)
        yield PalmtriePlus.build(entries, key_length, stride=stride)
    yield MultibitPalmtrie.build(entries, key_length, stride=4, subtree_skipping=False)
    yield DpdkStyleAcl.build(entries, key_length)
    yield EffiCutsClassifier.build(entries, key_length)
    yield AdaptiveMatcher.build(entries, key_length, small_threshold=20, large_threshold=60)
    yield TcamModel.build(entries, key_length)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_tables_all_matchers(seed):
    entries = random_entries(90, KEY_LENGTH, seed=seed)
    oracle = SortedListMatcher.build(entries, KEY_LENGTH)
    rng = random.Random(seed + 100)
    queries = [rng.getrandbits(KEY_LENGTH) for _ in range(400)]
    for matcher in _matchers(entries, KEY_LENGTH):
        for query in queries:
            assert_same_result(oracle.lookup(query), matcher.lookup(query))


def test_priority_collisions():
    """Many entries sharing one priority: matchers may return any of the
    tied winners but must agree on the winning priority."""
    rng = random.Random(9)
    entries = random_entries(60, KEY_LENGTH, seed=9, priority_range=4)
    oracle = SortedListMatcher.build(entries, KEY_LENGTH)
    for matcher in _matchers(entries, KEY_LENGTH):
        for _ in range(200):
            query = rng.getrandbits(KEY_LENGTH)
            assert_same_result(oracle.lookup(query), matcher.lookup(query))


def test_campus_acl_uniform_and_scan():
    acl = campus_acl(2)
    entries = list(acl.entries)
    oracle = SortedListMatcher.build(entries, 128)
    queries = uniform_traffic(entries, 250) + reverse_byte_scan(250)
    matchers = [
        BasicPalmtrie.build(entries, 128),
        MultibitPalmtrie.build(entries, 128, stride=6),
        PalmtriePlus.build(entries, 128, stride=8),
        DpdkStyleAcl.build(entries, 128),
        EffiCutsClassifier.build(entries, 128),
    ]
    for query in queries:
        expected = oracle.lookup(query)
        for matcher in matchers:
            assert_same_result(expected, matcher.lookup(query))


@pytest.mark.parametrize("profile", ["acl", "fw", "ipc"])
def test_classbench_traces(profile):
    acl = classbench_acl(profile, 150)
    entries = list(acl.entries)
    oracle = SortedListMatcher.build(entries, 128)
    queries = pareto_trace(entries, 250)
    matchers = [
        MultibitPalmtrie.build(entries, 128, stride=8),
        PalmtriePlus.build(entries, 128, stride=8),
        EffiCutsClassifier.build(entries, 128),
    ]
    for query in queries:
        expected = oracle.lookup(query)
        for matcher in matchers:
            assert_same_result(expected, matcher.lookup(query))


def test_incremental_inserts_track_oracle():
    """Interleaved inserts with lookups after each batch."""
    entries = random_entries(120, KEY_LENGTH, seed=77)
    oracle = SortedListMatcher(KEY_LENGTH)
    palmtrie = MultibitPalmtrie(KEY_LENGTH, stride=4)
    plus = PalmtriePlus(KEY_LENGTH, stride=4)
    rng = random.Random(77)
    for start in range(0, len(entries), 30):
        for entry in entries[start : start + 30]:
            oracle.insert(entry)
            palmtrie.insert(entry)
            plus.insert(entry)
        for _ in range(100):
            query = rng.getrandbits(KEY_LENGTH)
            expected = oracle.lookup(query)
            assert_same_result(expected, palmtrie.lookup(query))
            assert_same_result(expected, plus.lookup(query))


# ---------------------------------------------------------------------------
# Churn fuzz: random interleavings of inserts, deletes, transactional
# batches, and lookups driven through the serving engine, checked after
# every mutation against the brute-force oracle.  Covers every updatable
# matcher kind (build-only baselines raise NotImplementedError on insert)
# with the flow cache on, off, and under auto-freeze — the combinations
# where a stale cache row or a stale frozen plane would surface as a
# wrong verdict rather than a crash.
# ---------------------------------------------------------------------------

#: kinds whose insert/delete raise NotImplementedError (rebuild-only)
BUILD_ONLY = {"dpdk-acl", "efficuts"}
CHURN_KINDS = sorted(set(matcher_kinds()) - BUILD_ONLY)


def _fuzz_churn(kind, seed, *, auto_freeze=False, cache_size=256, steps=90):
    rng = random.Random(seed)
    live = random_entries(40, KEY_LENGTH, seed=seed)
    pool = random_entries(140, KEY_LENGTH, seed=seed + 1)
    engine = ClassificationEngine(build_matcher(kind, live, KEY_LENGTH), EngineConfig(cache_size=cache_size, auto_freeze=auto_freeze, invalidation_threshold=rng.choice([None, 0, 8])))

    def check(count):
        for _ in range(count):
            query = rng.getrandbits(KEY_LENGTH)
            assert_same_result(oracle_lookup(live, query), engine.lookup(query))

    for _ in range(steps):
        action = rng.randrange(6)
        if action == 0 and pool:
            entry = pool.pop(rng.randrange(len(pool)))
            engine.insert(entry)
            live.append(entry)
        elif action == 1 and live:
            key = rng.choice(live).key
            assert engine.delete(key)
            live[:] = [e for e in live if e.key != key]
        elif action == 2:
            # One transaction of mixed ops; mirror each op into the
            # oracle list in apply order (a batch may delete a key it
            # inserted moments earlier).
            ops = []
            for _ in range(rng.randrange(1, 5)):
                if pool and rng.random() < 0.6:
                    entry = pool.pop(rng.randrange(len(pool)))
                    ops.append(("insert", entry))
                    live.append(entry)
                elif live:
                    key = rng.choice(live).key
                    ops.append(("delete", key))
                    live[:] = [e for e in live if e.key != key]
            if ops:
                report = engine.apply_updates(ops)
                assert report.missing_deletes == 0
        elif action == 3 and pool:
            # Mutate the matcher directly, bypassing the engine: the
            # generation stamp must still keep cache and plane coherent.
            entry = pool.pop(rng.randrange(len(pool)))
            engine.matcher.insert(entry)
            live.append(entry)
        elif action == 4:
            queries = [rng.getrandbits(KEY_LENGTH) for _ in range(20)]
            got = engine.lookup_batch(queries)
            for query, result in zip(queries, got):
                assert_same_result(oracle_lookup(live, query), result)
        check(3)
    check(25)


@pytest.mark.parametrize(
    "auto_freeze,cache_size",
    [(False, 256), (True, 256), (False, 0)],
    ids=["cached", "auto-freeze", "uncached"],
)
@pytest.mark.parametrize("kind", CHURN_KINDS)
def test_churn_fuzz_tracks_oracle(kind, auto_freeze, cache_size):
    seed = 11 + CHURN_KINDS.index(kind)
    _fuzz_churn(kind, seed, auto_freeze=auto_freeze, cache_size=cache_size)


def test_interleaved_deletes_track_oracle():
    entries = random_entries(100, KEY_LENGTH, seed=78)
    oracle = SortedListMatcher.build(entries, KEY_LENGTH)
    palmtrie = MultibitPalmtrie.build(entries, KEY_LENGTH, stride=4)
    basic = BasicPalmtrie.build(entries, KEY_LENGTH)
    rng = random.Random(78)
    keys = list({e.key for e in entries})
    rng.shuffle(keys)
    for key in keys[:60]:
        assert oracle.delete(key) == palmtrie.delete(key) == basic.delete(key)
        for _ in range(25):
            query = rng.getrandbits(KEY_LENGTH)
            expected = oracle.lookup(query)
            assert_same_result(expected, palmtrie.lookup(query))
            assert_same_result(expected, basic.lookup(query))
