"""Golden tests pinned to the paper's own worked examples.

Covers Table 1 (the ternary matching table), the §3.1/§3.3 lookup
walkthroughs, Figure 4's stride-3 path structure, and Table 2's ACL.
"""

import pytest

from helpers import table1_entries
from repro.acl.compiler import compile_acl
from repro.acl.parser import parse_acl
from repro.acl.rule import Action
from repro.core.basic import BasicPalmtrie
from repro.core.multibit import MultibitPalmtrie, key_path
from repro.core.plus import PalmtriePlus
from repro.core.table import build_matcher
from repro.core.ternary import TernaryKey
from repro.packet.headers import PROTO_TCP, PacketHeader


class TestTable1:
    """§3.1: the example ternary matching table."""

    def test_query_key_matches_entries_5_and_8(self):
        entries = table1_entries()
        matching = [e.value for e in entries if e.matches(0b01110101)]
        assert sorted(matching) == [5, 8]

    def test_priority_encoding_selects_entry_5(self):
        for kind in ("palmtrie-basic", "palmtrie", "palmtrie-plus"):
            matcher = build_matcher(kind, table1_entries(), 8, stride=3) if kind != "palmtrie-basic" else build_matcher(kind, table1_entries(), 8)
            result = matcher.lookup(0b01110101)
            assert result.value == 5, kind

    def test_key_011_1000_matches_paper_examples(self):
        key = TernaryKey.from_string("011*1000")
        assert key.matches(0b01101000)
        assert key.matches(0b01111000)


class TestFigure2Walkthrough:
    """§3.3's traced lookup over the basic Palmtrie."""

    def test_candidates_and_winner(self):
        trie = BasicPalmtrie.build(table1_entries(), 8)
        # The walk finds node 5 (0*1101**, priority 7) and node 8
        # (011*1000... the paper's text says Node 8 key 011*1000 matches;
        # the winner is node 5).
        result = trie.lookup(0b01110101)
        assert (result.value, result.priority) == (5, 7)

    def test_another_trace_no_match_region(self):
        trie = BasicPalmtrie.build(table1_entries(), 8)
        # 00100000 matches nothing in Table 1.
        assert trie.lookup(0b00100000) is None

    def test_floor_entry(self):
        trie = BasicPalmtrie.build(table1_entries(), 8)
        # 11111111 matches only 1******* (value 9) and 1110**** does not.
        assert trie.lookup(0b11111111).value == 9


class TestFigure4StridePaths:
    """§3.4's k=3 example: bit indices observed in the Figure 4 walk."""

    def test_root_bit_index_is_5(self):
        # "As the bit index of the root node, Node 2, is 5..."
        trie = MultibitPalmtrie.build(table1_entries(), 8, stride=3)
        assert trie._root.bit == 5

    def test_node1_reaches_bit_minus_1(self):
        # "the bit index of Node 1 is -1" — key 1*0***10 ends at bit -1.
        steps = key_path(TernaryKey.from_string("1*0***10"), 3)
        assert steps[-1][0] == -1

    def test_stride3_lookup_matches_walkthrough(self):
        trie = MultibitPalmtrie.build(table1_entries(), 8, stride=3)
        assert trie.lookup(0b01110101).value == 5
        plus = PalmtriePlus.from_palmtrie(trie)
        assert plus.lookup(0b01110101).value == 5


class TestTable2Acl:
    """§3.1's ACL example, end to end through the public API."""

    ACL_TEXT = """\
    permit ip 192.0.2.0/24 0.0.0.0/0
    permit icmp 0.0.0.0/0 192.0.2.0/24
    permit udp 0.0.0.0/0 eq 53 192.0.2.0/24
    permit tcp 0.0.0.0/0 192.0.2.0/24 established
    deny ip 0.0.0.0/0 192.0.2.0/24
    """

    @pytest.fixture(scope="class")
    def matcher_and_acl(self):
        acl = compile_acl(parse_acl(self.ACL_TEXT))
        matcher = PalmtriePlus.build(acl.entries, 128, stride=8)
        return matcher, acl

    def test_established_conversion(self, matcher_and_acl):
        # "an ACL entry with the keyword of established is converted into
        # two ternary matching entries" — 5 rules, 6 entries.
        _, acl = matcher_and_acl
        assert len(acl.rules) == 5
        assert len(acl.entries) == 6

    def test_inbound_ack_permitted(self, matcher_and_acl):
        matcher, acl = matcher_and_acl
        header = PacketHeader(
            src_ip=0x08080808, dst_ip=0xC0000263, proto=PROTO_TCP, tcp_flags=0x10
        )
        entry = matcher.lookup(header.to_query())
        assert acl.rules[entry.value].action is Action.PERMIT

    def test_inbound_syn_denied(self, matcher_and_acl):
        matcher, acl = matcher_and_acl
        header = PacketHeader(
            src_ip=0x08080808, dst_ip=0xC0000263, proto=PROTO_TCP, tcp_flags=0x02
        )
        entry = matcher.lookup(header.to_query())
        assert acl.rules[entry.value].action is Action.DENY


class TestComplexityClaim:
    """Table 3: the Palmtrie's sublinear lookup scaling."""

    def test_depth_bound(self):
        # Worst case is bound to O(L^2) visits; check a generous bound.
        from helpers import random_entries

        entries = random_entries(512, 16, seed=88)
        trie = BasicPalmtrie.build(entries, 16)
        assert trie.depth() <= 16 * 2
