"""The learned RQ-RMI matcher tier (repro.core.learned).

The bar is the same one every matcher kind carries: verdicts
bit-identical (in winning priority) to the sorted-list oracle.  For the
learned tier that bar is met *by construction* — the tracked max
prediction error makes the probe window provably cover the true range
— so these tests focus on the edges where the construction could break
(empty set, single rule, nothing partitionable) and on the one failure
mode the design explicitly leaves open: a corrupted model mispredicting,
which the engine's shadow verification must catch and quarantine.
"""

from __future__ import annotations

import random

import pytest

from helpers import assert_same_result, oracle_lookup, random_entries
from repro.baselines.sorted_list import SortedListMatcher
from repro.config import EngineConfig
from repro.core.learned import LearnedMatcher, key_range, range_representable
from repro.core.serialize import (
    FormatError,
    deserialize_learned,
    serialize_learned,
)
from repro.core.table import TernaryEntry, build_matcher
from repro.core.ternary import TernaryKey
from repro.engine import ClassificationEngine
from repro.resilience.guard import GuardRail

KEY_LENGTH = 32


def _prefix_entries(count: int, seed: int) -> list[TernaryEntry]:
    """Range-representable rules: prefixes of assorted lengths."""
    rng = random.Random(seed)
    entries = []
    for i in range(count):
        plen = rng.randint(8, KEY_LENGTH)
        data = rng.getrandbits(plen) << (KEY_LENGTH - plen)
        mask = (1 << (KEY_LENGTH - plen)) - 1
        key = TernaryKey(data, mask, KEY_LENGTH)
        entries.append(TernaryEntry(key, i, rng.randint(1, 1000)))
    return entries


def _scattered_entries(count: int, seed: int) -> list[TernaryEntry]:
    """Rules with a wildcard hole mid-key: never range-representable."""
    rng = random.Random(seed)
    entries = []
    for i in range(count):
        bits = [rng.choice("01") for _ in range(KEY_LENGTH)]
        bits[rng.randint(0, KEY_LENGTH // 2)] = "*"  # a high-order hole
        bits[-1] = rng.choice("01")  # low bit set: mask not a suffix run
        key = TernaryKey.from_string("".join(bits))
        assert not range_representable(key)
        entries.append(TernaryEntry(key, i, rng.randint(1, 1000)))
    return entries


def _mixed_trace(entries, count: int, seed: int) -> list[int]:
    """Uniform noise plus queries biased into the rules' ranges."""
    rng = random.Random(seed)
    queries = [rng.getrandbits(KEY_LENGTH) for _ in range(count)]
    for entry in entries:
        queries.append(entry.key.data | (rng.getrandbits(KEY_LENGTH) & entry.key.mask))
    return queries


def _corrupt(matcher: LearnedMatcher) -> None:
    """Break every submodel: wrong intercept, lying zero error bound.

    The probe window collapses to the (wrong) predicted index, so
    queries inside a range come back as false no-matches — the
    misprediction mode an intact model cannot exhibit.
    """
    assert matcher.iset_count > 0, "corruption test needs a trained model"
    for model in matcher._isets:
        for submodel in model.submodels:
            submodel.intercept += 10 * len(model)
            submodel.error = 0.0


class TestRangeRepresentability:
    def test_contiguous_suffix_masks_are_ranges(self):
        assert range_representable(TernaryKey.from_prefix(0xC0, 8, KEY_LENGTH))
        assert range_representable(TernaryKey.exact(7, KEY_LENGTH))
        assert range_representable(TernaryKey.wildcard(KEY_LENGTH))
        key = TernaryKey.from_prefix(0x1234, 16, KEY_LENGTH)
        lo, hi = key_range(key)
        assert lo == 0x1234 << 16
        assert hi == (0x1234 << 16) | 0xFFFF
        assert key.matches(lo) and key.matches(hi)
        assert not key.matches(hi + 1)

    def test_scattered_wildcards_are_not(self):
        assert not range_representable(TernaryKey.from_string("1*1" + "0" * 29))
        assert not range_representable(TernaryKey.from_string("*" * 8 + "1" * 24))


class TestEdges:
    def test_empty_rule_set(self):
        matcher = LearnedMatcher(KEY_LENGTH)
        assert len(matcher) == 0
        assert matcher.lookup(0) is None
        assert matcher.lookup_batch([1, 2, 3]) == [None, None, None]
        assert matcher.lookup_all(5) == []
        assert matcher.iset_count == 0
        assert matcher.coverage_ratio == 0.0
        assert matcher.max_error() == 0.0

    def test_single_rule(self):
        entry = TernaryEntry(TernaryKey.from_prefix(0xAB, 8, KEY_LENGTH), "hit", 5)
        matcher = LearnedMatcher.build([entry], KEY_LENGTH)
        lo, hi = key_range(entry.key)
        assert matcher.lookup(lo).value == "hit"
        assert matcher.lookup(hi).value == "hit"
        assert matcher.lookup((lo - 1) % (1 << KEY_LENGTH)) is None
        # one rule is below min_iset_size: the remainder owns it
        assert matcher.iset_count == 0
        assert len(matcher) == 1

    def test_fully_non_partitionable_falls_back_entirely(self):
        entries = _scattered_entries(40, seed=3)
        matcher = LearnedMatcher.build(entries, KEY_LENGTH)
        assert matcher.iset_count == 0
        assert matcher.coverage_ratio == 0.0
        assert matcher.model_report()["remainder_rules"] == len(entries)
        for query in _mixed_trace(entries, 2000, seed=4):
            assert_same_result(matcher.lookup(query), oracle_lookup(entries, query))

    def test_duplicate_ranges_split_across_tiers(self):
        # Identical keys cannot share an iSet (ranges would overlap);
        # at most one copy is learned, the rest spill over — and the
        # highest priority still wins.
        key = TernaryKey.from_prefix(0x42, 8, KEY_LENGTH)
        entries = [TernaryEntry(key, i, 10 * (i + 1)) for i in range(6)]
        entries += _prefix_entries(30, seed=9)
        matcher = LearnedMatcher.build(entries, KEY_LENGTH)
        oracle = SortedListMatcher.build(entries, KEY_LENGTH)
        for query in _mixed_trace(entries, 1000, seed=10):
            assert_same_result(matcher.lookup(query), oracle.lookup(query))

    def test_invalid_knobs_are_rejected(self):
        with pytest.raises(ValueError):
            LearnedMatcher(KEY_LENGTH, max_isets=-1)
        with pytest.raises(ValueError):
            LearnedMatcher(KEY_LENGTH, min_iset_size=0)
        with pytest.raises(ValueError):
            LearnedMatcher(KEY_LENGTH, submodels_per_iset=0)
        with pytest.raises(ValueError):
            LearnedMatcher(KEY_LENGTH).insert(
                TernaryEntry(TernaryKey.exact(1, 8), 0, 1)
            )


class TestDifferential:
    def test_mixed_rules_match_oracle_exactly(self):
        entries = _prefix_entries(150, seed=21) + _scattered_entries(30, seed=22)
        matcher = LearnedMatcher.build(entries, KEY_LENGTH, max_isets=16)
        oracle = SortedListMatcher.build(entries, KEY_LENGTH)
        report = matcher.model_report()
        assert report["isets"] > 0, "prefix-heavy set must train models"
        assert 0.0 < report["coverage_ratio"] <= 1.0
        queries = _mixed_trace(entries, 5000, seed=23)
        batch = matcher.lookup_batch(queries)
        for query, got in zip(queries, batch):
            assert_same_result(got, oracle.lookup(query))
            assert_same_result(matcher.lookup(query), got)  # scalar == batch
        # the in-range half of the trace must exercise the models
        assert matcher.predictions > 0
        # recovered mispredictions are allowed; unrecovered ones are not
        assert matcher.validation_failures == 0

    def test_lookup_all_matches_oracle(self):
        entries = _prefix_entries(80, seed=31)
        matcher = LearnedMatcher.build(entries, KEY_LENGTH, max_isets=16)
        oracle = SortedListMatcher.build(entries, KEY_LENGTH)
        for query in _mixed_trace(entries, 500, seed=32):
            got = sorted(e.priority for e in matcher.lookup_all(query))
            want = sorted(e.priority for e in oracle.lookup_all(query))
            assert got == want

    def test_random_ternary_entries_via_registry(self):
        entries = random_entries(60, KEY_LENGTH, seed=41)
        config = EngineConfig(matcher="learned", stride=4)
        matcher = build_matcher(config, entries, KEY_LENGTH)
        assert isinstance(matcher, LearnedMatcher)
        assert matcher.stride == 4  # accepts_stride forwards the knob
        for query in _mixed_trace(entries, 1500, seed=42):
            assert_same_result(matcher.lookup(query), oracle_lookup(entries, query))


class TestChurn:
    def test_insert_lands_in_remainder_and_retrain_recovers(self):
        entries = _prefix_entries(60, seed=51)
        matcher = LearnedMatcher.build(entries, KEY_LENGTH, max_isets=16)
        covered = matcher.coverage_ratio
        assert covered > 0.0
        generation = matcher.generation
        extra = TernaryEntry(TernaryKey.from_prefix(0x7, 4, KEY_LENGTH), "new", 5000)
        matcher.insert(extra)
        assert matcher.generation > generation
        assert matcher.coverage_ratio < covered  # decayed, not retrained
        lo, _ = key_range(extra.key)
        assert matcher.lookup(lo).value == "new"
        matcher.retrain()
        assert matcher.lookup(lo).value == "new"
        assert matcher.coverage_ratio >= covered  # the new prefix learns too

    def test_delete_removes_all_copies_like_the_oracle(self):
        entries = _prefix_entries(60, seed=61)
        key = entries[0].key
        entries.append(TernaryEntry(key, "twin", entries[0].priority + 1))
        matcher = LearnedMatcher.build(entries, KEY_LENGTH, max_isets=16)
        oracle = SortedListMatcher.build(entries, KEY_LENGTH)
        assert matcher.delete(key) == oracle.delete(key) == True
        assert matcher.delete(key) == oracle.delete(key) == False
        assert len(matcher) == len(oracle)
        for query in _mixed_trace(entries, 1500, seed=62):
            assert_same_result(matcher.lookup(query), oracle.lookup(query))


class TestCorruptedModelShadowVerify:
    def test_corrupted_model_produces_wrong_verdicts(self):
        """Sanity for the quarantine test: corruption really lies."""
        entries = _prefix_entries(100, seed=71)
        matcher = LearnedMatcher.build(entries, KEY_LENGTH, max_isets=16)
        oracle = SortedListMatcher.build(entries, KEY_LENGTH)
        _corrupt(matcher)
        queries = _mixed_trace(entries, 2000, seed=72)
        wrong = sum(
            1
            for q in queries
            if (matcher.lookup(q) is None) != (oracle.lookup(q) is None)
        )
        assert wrong > 0
        assert matcher.window_misses > 0

    def test_shadow_verification_catches_and_quarantines(self):
        """The acceptance path: a mispredicting model cannot lie to a
        guarded engine — every served answer stays oracle-exact, the
        mismatch is counted, and the guard quarantines the fast path."""
        entries = _prefix_entries(100, seed=81)
        matcher = LearnedMatcher.build(entries, KEY_LENGTH, max_isets=16)
        oracle = SortedListMatcher.build(entries, KEY_LENGTH)
        _corrupt(matcher)
        guard = GuardRail(shadow_sample=1.0)
        engine = ClassificationEngine(
            matcher, EngineConfig(cache_size=64, resilience=guard)
        )
        queries = _mixed_trace(entries, 500, seed=82)
        for got, query in zip(engine.lookup_batch(queries), queries):
            assert_same_result(got, oracle.lookup(query))
        assert guard.shadow_mismatches > 0
        assert guard.quarantined
        assert engine.health == "quarantined"
        # quarantined service keeps being exact (reference tier)
        for query in queries[:200]:
            assert_same_result(engine.lookup(query), oracle.lookup(query))

    def test_intact_model_never_trips_the_shadow(self):
        entries = _prefix_entries(100, seed=91)
        matcher = LearnedMatcher.build(entries, KEY_LENGTH, max_isets=16)
        guard = GuardRail(shadow_sample=1.0)
        engine = ClassificationEngine(
            matcher, EngineConfig(cache_size=64, resilience=guard)
        )
        engine.lookup_batch(_mixed_trace(entries, 1000, seed=92))
        assert guard.shadow_checks > 0
        assert guard.shadow_mismatches == 0
        assert engine.health == "ok"
        report = engine.report()
        assert report["learned"]["isets"] == matcher.iset_count
        assert report["learned"]["coverage_ratio"] == matcher.coverage_ratio


class TestSerialization:
    def test_plml_round_trip_retrains_identically(self):
        entries = _prefix_entries(90, seed=101) + _scattered_entries(20, seed=102)
        matcher = LearnedMatcher.build(
            entries, KEY_LENGTH, stride=4, max_isets=12, min_iset_size=3
        )
        wire = serialize_learned(matcher)
        loaded = deserialize_learned(wire)
        assert loaded.key_length == KEY_LENGTH
        assert loaded.stride == 4
        assert loaded.max_isets == 12
        assert loaded.min_iset_size == 3
        assert len(loaded) == len(matcher)
        # training is deterministic: same entries + knobs, same models
        assert loaded.model_report()["isets"] == matcher.model_report()["isets"]
        assert loaded.model_report()["max_error"] == matcher.model_report()["max_error"]
        for query in _mixed_trace(entries, 1500, seed=103):
            assert_same_result(loaded.lookup(query), matcher.lookup(query))

    def test_corruption_fails_closed(self):
        matcher = LearnedMatcher.build(_prefix_entries(30, seed=111), KEY_LENGTH)
        wire = serialize_learned(matcher)
        for cut in (0, 3, len(wire) // 2, len(wire) - 1):
            with pytest.raises(FormatError):
                deserialize_learned(wire[:cut])
        bad = bytearray(wire)
        bad[4] ^= 0xFF  # version field
        with pytest.raises(FormatError):
            deserialize_learned(bytes(bad))
        with pytest.raises(FormatError):
            deserialize_learned(b"PLMF" + wire[4:])  # wrong magic
