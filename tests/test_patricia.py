"""Unit and property tests for the Patricia trie (repro.core.patricia)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.patricia import PatriciaTrie


class TestFigure1:
    """Figure 1 right: the Patricia trie for keys 100, 001, 010."""

    @pytest.fixture()
    def trie(self):
        trie = PatriciaTrie(3)
        trie.insert(0b100, 1)
        trie.insert(0b001, 2)
        trie.insert(0b010, 3)
        return trie

    def test_lookups(self, trie):
        assert trie.lookup(0b100) == 1
        assert trie.lookup(0b001) == 2
        assert trie.lookup(0b010) == 3
        assert trie.lookup(0b111) is None

    def test_node_count_is_linear(self, trie):
        # n leaves + (n - 1) branching nodes: the compression Figure 1
        # illustrates against the radix tree's 8 nodes.
        assert trie.node_count() == 5


class TestBasicOps:
    def test_empty(self):
        trie = PatriciaTrie(8)
        assert trie.lookup(0) is None
        assert len(trie) == 0
        assert not trie.delete(0)

    def test_single_key(self):
        trie = PatriciaTrie(8)
        trie.insert(0x42, "x")
        assert trie.lookup(0x42) == "x"
        assert trie.lookup(0x43) is None
        assert 0x42 in trie

    def test_overwrite(self):
        trie = PatriciaTrie(8)
        trie.insert(7, "a")
        trie.insert(7, "b")
        assert len(trie) == 1
        assert trie.lookup(7) == "b"

    def test_delete_to_empty(self):
        trie = PatriciaTrie(8)
        trie.insert(7, "a")
        assert trie.delete(7)
        assert len(trie) == 0
        assert trie.lookup(7) is None

    def test_delete_splices_sibling(self):
        trie = PatriciaTrie(8)
        trie.insert(0b0000_0001, "a")
        trie.insert(0b1000_0001, "b")
        assert trie.delete(0b0000_0001)
        assert trie.lookup(0b1000_0001) == "b"
        assert trie.node_count() == 1

    def test_key_out_of_range(self):
        trie = PatriciaTrie(4)
        with pytest.raises(ValueError):
            trie.insert(16, "x")
        with pytest.raises(ValueError):
            trie.lookup(-1)

    def test_items(self):
        trie = PatriciaTrie(8)
        data = {3: "a", 200: "b", 77: "c"}
        for k, v in data.items():
            trie.insert(k, v)
        assert dict(trie.items()) == data


class TestRandomizedAgainstDict:
    def test_bulk(self):
        rng = random.Random(5)
        trie = PatriciaTrie(16)
        reference: dict[int, int] = {}
        for i in range(500):
            key = rng.getrandbits(16)
            trie.insert(key, i)
            reference[key] = i
        for key in range(0, 1 << 16, 97):
            assert trie.lookup(key) == reference.get(key)
        assert len(trie) == len(reference)
        # Delete half and re-check.
        for key in list(reference)[::2]:
            assert trie.delete(key)
            del reference[key]
        for key in range(0, 1 << 16, 131):
            assert trie.lookup(key) == reference.get(key)


@settings(max_examples=50, deadline=None)
@given(keys=st.lists(st.integers(0, 2**12 - 1), min_size=1, max_size=60))
def test_property_matches_dict(keys):
    trie = PatriciaTrie(12)
    reference = {}
    for i, key in enumerate(keys):
        trie.insert(key, i)
        reference[key] = i
    assert len(trie) == len(reference)
    for key in reference:
        assert trie.lookup(key) == reference[key]
    assert dict(trie.items()) == reference


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(st.integers(0, 2**10 - 1), min_size=1, max_size=40, unique=True),
    data=st.data(),
)
def test_property_delete_roundtrip(keys, data):
    trie = PatriciaTrie(10)
    for key in keys:
        trie.insert(key, key)
    to_delete = data.draw(st.lists(st.sampled_from(keys), unique=True))
    for key in to_delete:
        assert trie.delete(key)
    remaining = set(keys) - set(to_delete)
    for key in keys:
        expected = key if key in remaining else None
        assert trie.lookup(key) == expected
    # Patricia invariant: node count stays linear in the key count.
    if remaining:
        assert trie.node_count() == 2 * len(remaining) - 1
