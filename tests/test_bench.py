"""Unit tests for the measurement harness (repro.bench)."""

import pytest

from helpers import table1_entries
from repro.baselines.sorted_list import SortedListMatcher
from repro.bench.costmodel import CacheModel, modeled_mlps
from repro.bench.harness import measure_build, measure_lookup_rate
from repro.bench.report import Table, format_rate, format_seconds, save_report
from repro.bench.scale import SCALES, current_scale


class TestHarness:
    @pytest.fixture()
    def matcher(self):
        return SortedListMatcher.build(table1_entries(), 8)

    def test_measure_lookup_rate(self, matcher):
        result = measure_lookup_rate(matcher, list(range(256)), min_duration=0.01, samples=2)
        assert result.lookups_per_second > 0
        assert result.matcher == "sorted-list"
        assert len(result.samples) == 2
        assert result.node_visits_per_lookup > 0
        assert result.mega_lookups_per_second == result.lookups_per_second / 1e6

    def test_measure_empty_queries_rejected(self, matcher):
        with pytest.raises(ValueError, match="empty"):
            measure_lookup_rate(matcher, [])

    def test_measure_build(self):
        result = measure_build("x", lambda: sum(range(1000)))
        assert result.seconds >= 0
        assert result.result == sum(range(1000))
        assert result.label == "x"


class TestCostModel:
    def test_latency_monotonic_in_footprint(self):
        model = CacheModel()
        sizes = [1024, 64 * 1024, 1024 * 1024, 64 * 1024 * 1024]
        latencies = [model.latency(s) for s in sizes]
        assert latencies == sorted(latencies)
        assert latencies[0] == model.l1_cycles
        assert latencies[-1] < model.dram_cycles

    def test_tiny_structure_is_l1(self):
        assert CacheModel().latency(0) == CacheModel().l1_cycles

    def test_modeled_mlps_positive_and_size_sensitive(self):
        small = SortedListMatcher.build(table1_entries(), 8)
        queries = list(range(64))
        mlps = modeled_mlps(small, queries)
        assert mlps > 0

    def test_modeled_empty_queries_rejected(self):
        matcher = SortedListMatcher.build(table1_entries(), 8)
        with pytest.raises(ValueError, match="empty"):
            modeled_mlps(matcher, [])


class TestReport:
    def test_format_rate(self):
        assert format_rate(2_500_000) == "2.50 Mlps"
        assert format_rate(12_345) == "12.3 klps"

    def test_format_seconds(self):
        assert format_seconds(120) == "120 s"
        assert format_seconds(1.5) == "1.50 s"
        assert format_seconds(0.0123) == "12.30 ms"
        assert format_seconds(5e-6) == "5 us"

    def test_table_rendering(self):
        table = Table("Demo", ["a", "bb"])
        table.add_row(1, "x")
        text = table.render()
        assert "Demo" in text and "bb" in text and "x" in text

    def test_table_cell_count_check(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError, match="expected 2 cells"):
            table.add_row(1)

    def test_save_report(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        path = save_report("demo", "hello")
        assert path.endswith("demo.txt")
        assert (tmp_path / "demo.txt").read_text() == "hello\n"


class TestScale:
    def test_default_is_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "small"

    def test_env_selects_preset(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert current_scale().name == "medium"

    def test_unknown_preset(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError, match="not a preset"):
            current_scale()

    def test_paper_preset_matches_paper_sizes(self):
        paper = SCALES["paper"]
        assert max(paper.campus_qs) == 16
        assert 500_000 in paper.classbench_sizes
        assert paper.samples == 30


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        from repro.bench.experiments import ALL_EXPERIMENTS

        assert set(ALL_EXPERIMENTS) == {
            "fig7", "fig8", "fig9", "fig10", "fig11",
            "table3", "table4", "table5", "ipv6",
        }

    def test_unknown_experiment(self):
        from repro.bench.experiments import run_experiment

        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99")

    def test_table3_runs_quickly(self):
        from repro.bench.experiments import table3_complexity
        from repro.bench.scale import SCALES

        table = table3_complexity(SCALES["small"], sizes=(32, 128))
        text = table.render()
        assert "Table 3" in text
