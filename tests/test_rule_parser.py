"""Unit tests for the ACL rule model and parser (repro.acl.rule/parser)."""

import pytest

from repro.acl.parser import AclParseError, parse_acl, parse_rule
from repro.acl.rule import AclRule, Action, Protocol

TABLE2_ACL = """\
permit ip 192.0.2.0/24 0.0.0.0/0
permit icmp 0.0.0.0/0 192.0.2.0/24
permit udp 0.0.0.0/0 eq 53 192.0.2.0/24
permit tcp 0.0.0.0/0 192.0.2.0/24 established
deny ip 0.0.0.0/0 192.0.2.0/24
"""


class TestParseRule:
    def test_table2_first_rule(self):
        rule = parse_rule("permit ip 192.0.2.0/24 0.0.0.0/0")
        assert rule.action is Action.PERMIT
        assert rule.protocol is Protocol.IP
        assert rule.src_prefix == (0xC0000200, 24)
        assert rule.dst_prefix == (0, 0)

    def test_source_port(self):
        rule = parse_rule("permit udp 0.0.0.0/0 eq 53 192.0.2.0/24")
        assert rule.src_ports == (53, 53)
        assert rule.dst_ports == (0, 0xFFFF)

    def test_established(self):
        rule = parse_rule("permit tcp any 192.0.2.0/24 established")
        assert rule.established

    def test_any_keyword(self):
        rule = parse_rule("deny ip any any")
        assert rule.src_prefix == (0, 0)
        assert rule.dst_prefix == (0, 0)

    def test_range(self):
        rule = parse_rule("permit tcp any range 1000 2000 any")
        assert rule.src_ports == (1000, 2000)

    def test_gt(self):
        rule = parse_rule("permit tcp any any gt 1023")
        assert rule.dst_ports == (1024, 65535)

    def test_lt(self):
        rule = parse_rule("permit tcp any any lt 1024")
        assert rule.dst_ports == (0, 1023)

    def test_flags_keyword(self):
        rule = parse_rule("permit tcp any any flags **0000*1")
        assert rule.tcp_flags == "**0000*1"

    @pytest.mark.parametrize(
        "line, match",
        [
            ("permit ip any", "at least"),
            ("allow ip any any", "unknown action"),
            ("permit gre any any", "unknown protocol"),
            ("permit icmp any eq 53 any", "only valid for tcp/udp"),
            ("permit tcp any range 5 1 any", "empty range"),
            ("permit tcp any eq 70000 any", "out of range"),
            ("permit tcp any gt 65535 any", "matches nothing"),
            ("permit tcp any lt 0 any", "matches nothing"),
            ("permit tcp any any bogus", "unexpected token"),
            ("permit tcp any any flags", "needs a ternary string"),
            ("permit tcp any any flags 01", "ternary digits"),
        ],
    )
    def test_malformed(self, line, match):
        with pytest.raises(AclParseError, match=match):
            parse_rule(line)

    def test_error_carries_line_number(self):
        with pytest.raises(AclParseError, match="line 3"):
            parse_rule("nonsense", line_no=3)


class TestParseAcl:
    def test_table2(self):
        rules = parse_acl(TABLE2_ACL)
        assert len(rules) == 5
        assert rules[0].action is Action.PERMIT
        assert rules[-1].action is Action.DENY

    def test_comments_and_blanks(self):
        rules = parse_acl("# comment\n\n! another\npermit ip any any\n")
        assert len(rules) == 1

    def test_trailing_comments(self):
        rules = parse_acl("permit ip any any  # allow everything\n")
        assert len(rules) == 1
        assert rules[0].action is Action.PERMIT

    def test_error_line_number(self):
        with pytest.raises(AclParseError, match="line 2"):
            parse_acl("permit ip any any\nbroken line here\n")


class TestAclRuleValidation:
    def test_ports_require_tcp_udp(self):
        with pytest.raises(ValueError, match="require tcp or udp"):
            AclRule(Action.PERMIT, Protocol.ICMP, (0, 0), (0, 0), src_ports=(53, 53))

    def test_established_requires_tcp(self):
        with pytest.raises(ValueError, match="require protocol tcp"):
            AclRule(Action.PERMIT, Protocol.UDP, (0, 0), (0, 0), established=True)

    def test_established_and_flags_conflict(self):
        with pytest.raises(ValueError, match="either established"):
            AclRule(
                Action.PERMIT,
                Protocol.TCP,
                (0, 0),
                (0, 0),
                established=True,
                tcp_flags="***1****",
            )

    def test_bad_port_range(self):
        with pytest.raises(ValueError, match="invalid src port range"):
            AclRule(Action.PERMIT, Protocol.TCP, (0, 0), (0, 0), src_ports=(5, 1))

    def test_to_line_roundtrip(self):
        lines = [
            "permit ip 192.0.2.0/24 0.0.0.0/0",
            "permit udp 0.0.0.0/0 eq 53 192.0.2.0/24",
            "permit tcp 0.0.0.0/0 192.0.2.0/24 established",
            "permit tcp 0.0.0.0/0 range 1000 2000 10.0.0.0/8 eq 80",
            "deny ip 0.0.0.0/0 192.0.2.0/24",
        ]
        for line in lines:
            assert parse_rule(line).to_line() == line

    def test_protocol_numbers(self):
        assert Protocol.IP.number is None
        assert Protocol.ICMP.number == 1
        assert Protocol.TCP.number == 6
        assert Protocol.UDP.number == 17
