"""Unit tests for IPv4 utilities (repro.acl.ip)."""

import pytest

from repro.acl.ip import (
    format_ipv4,
    format_prefix,
    parse_ipv4,
    parse_prefix,
    prefix_contains,
    prefix_mask,
    reverse_bytes,
)


class TestParseIpv4:
    def test_basic(self):
        assert parse_ipv4("192.0.2.1") == 0xC0000201

    def test_zero(self):
        assert parse_ipv4("0.0.0.0") == 0

    def test_broadcast(self):
        assert parse_ipv4("255.255.255.255") == 0xFFFFFFFF

    @pytest.mark.parametrize(
        "text", ["192.0.2", "192.0.2.1.5", "256.0.0.1", "a.b.c.d", "01.2.3.4", "-1.0.0.0"]
    )
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_ipv4(text)

    def test_roundtrip(self):
        for value in (0, 1, 0x0A000000, 0xC0A80101, 0xFFFFFFFF):
            assert parse_ipv4(format_ipv4(value)) == value


class TestFormatIpv4:
    def test_basic(self):
        assert format_ipv4(0x0A000001) == "10.0.0.1"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(1 << 32)


class TestPrefix:
    def test_parse(self):
        assert parse_prefix("10.0.0.0/8") == (0x0A000000, 8)

    def test_bare_address_is_host_route(self):
        assert parse_prefix("10.1.2.3") == (0x0A010203, 32)

    def test_zero_prefix(self):
        assert parse_prefix("0.0.0.0/0") == (0, 0)

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError, match="host bits"):
            parse_prefix("10.0.0.1/8")

    def test_bad_length(self):
        with pytest.raises(ValueError):
            parse_prefix("10.0.0.0/33")
        with pytest.raises(ValueError):
            parse_prefix("10.0.0.0/x")

    def test_format(self):
        assert format_prefix(0x0A000000, 8) == "10.0.0.0/8"

    def test_mask(self):
        assert prefix_mask(0) == 0
        assert prefix_mask(8) == 0xFF000000
        assert prefix_mask(24) == 0xFFFFFF00
        assert prefix_mask(32) == 0xFFFFFFFF

    def test_mask_out_of_range(self):
        with pytest.raises(ValueError):
            prefix_mask(33)

    def test_contains(self):
        addr, plen = parse_prefix("10.0.0.0/8")
        assert prefix_contains(addr, plen, parse_ipv4("10.255.1.2"))
        assert not prefix_contains(addr, plen, parse_ipv4("11.0.0.0"))


class TestReverseBytes:
    def test_paper_scan_order(self):
        # 10.255.0.0 reversed is 0.0.255.10.
        assert reverse_bytes(parse_ipv4("10.255.0.0")) == parse_ipv4("0.0.255.10")

    def test_involution(self):
        for value in (0, 0x0A010203, 0xFFFFFFFF, 0x12345678):
            assert reverse_bytes(reverse_bytes(value)) == value
