"""Unit tests for the packet substrate (repro.packet)."""

import pytest

from repro.acl.layout import LAYOUT_V4, TCP_ACK, TCP_SYN
from repro.packet.codec import PacketDecodeError, decode_packet, encode_packet, ipv4_checksum
from repro.packet.headers import PROTO_ICMP, PROTO_TCP, PROTO_UDP, PacketHeader


class TestPacketHeader:
    def test_to_query_roundtrip(self):
        header = PacketHeader(
            src_ip=0x0A000001,
            dst_ip=0xC0000201,
            proto=PROTO_TCP,
            src_port=54321,
            dst_port=443,
            tcp_flags=TCP_ACK,
        )
        assert PacketHeader.from_query(header.to_query()) == header

    def test_field_range_validation(self):
        with pytest.raises(ValueError, match="proto"):
            PacketHeader(src_ip=0, dst_ip=0, proto=256)
        with pytest.raises(ValueError, match="src_port"):
            PacketHeader(src_ip=0, dst_ip=0, proto=6, src_port=1 << 16)

    def test_str_is_human_readable(self):
        header = PacketHeader(src_ip=0x0A000001, dst_ip=0xC0000201, proto=6, dst_port=80)
        text = str(header)
        assert "10.0.0.1" in text and "192.0.2.1" in text

    def test_query_uses_layout(self):
        header = PacketHeader(src_ip=1, dst_ip=2, proto=6)
        query = header.to_query(LAYOUT_V4)
        assert (query >> 96) & 0xFFFFFFFF == 1
        assert (query >> 64) & 0xFFFFFFFF == 2


class TestChecksum:
    def test_rfc1071_example(self):
        # Known vector: checksum of 0x0001 0xf203 0xf4f5 0xf6f7.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert ipv4_checksum(data) == 0x220D

    def test_odd_length_padded(self):
        assert ipv4_checksum(b"\xff") == ipv4_checksum(b"\xff\x00")

    def test_header_with_checksum_sums_to_zero(self):
        header = PacketHeader(src_ip=0x0A000001, dst_ip=0xC0000201, proto=PROTO_TCP)
        wire = encode_packet(header)
        assert ipv4_checksum(wire[:20]) == 0


class TestCodecRoundtrip:
    @pytest.mark.parametrize(
        "header",
        [
            PacketHeader(0x0A000001, 0xC0000201, PROTO_TCP, 1234, 80, TCP_SYN),
            PacketHeader(0x0A000001, 0xC0000201, PROTO_UDP, 53, 5353),
            PacketHeader(0x0A000001, 0xC0000201, PROTO_ICMP),
            PacketHeader(0x0A000001, 0xC0000201, 47),  # GRE: no L4 ports
        ],
    )
    def test_roundtrip(self, header):
        assert decode_packet(encode_packet(header)) == header

    def test_roundtrip_with_payload(self):
        header = PacketHeader(0x0A000001, 0xC0000201, PROTO_UDP, 53, 53)
        wire = encode_packet(header, payload=b"hello dns")
        assert decode_packet(wire) == header


class TestDecodeErrors:
    def test_truncated(self):
        with pytest.raises(PacketDecodeError, match="truncated IPv4"):
            decode_packet(b"\x45\x00")

    def test_wrong_version(self):
        header = bytearray(encode_packet(PacketHeader(1, 2, PROTO_ICMP)))
        header[0] = (6 << 4) | 5
        with pytest.raises(PacketDecodeError, match="not IPv4"):
            decode_packet(bytes(header))

    def test_bad_ihl(self):
        header = bytearray(encode_packet(PacketHeader(1, 2, PROTO_ICMP)))
        header[0] = (4 << 4) | 2
        with pytest.raises(PacketDecodeError, match="header length"):
            decode_packet(bytes(header))

    def test_total_length_exceeds_capture(self):
        wire = encode_packet(PacketHeader(1, 2, PROTO_UDP, 1, 2))
        with pytest.raises(PacketDecodeError, match="exceeds capture"):
            decode_packet(wire[:-4])

    def test_truncated_tcp(self):
        wire = encode_packet(PacketHeader(1, 2, PROTO_TCP, 1, 2))
        # Keep the IPv4 header but cut into the TCP header, fixing total length.
        cut = bytearray(wire[:24])
        cut[2:4] = (24).to_bytes(2, "big")
        with pytest.raises(PacketDecodeError, match="truncated TCP"):
            decode_packet(bytes(cut))
