"""The redesigned construction surface: EngineConfig, from_config,
serve(), and the deprecated-keyword shim.

CI runs this file (like the whole suite) under
``-W error::DeprecationWarning``; the shim tests therefore catch the
warning explicitly with ``pytest.warns`` — any *other* code path that
still feeds legacy knobs fails the run.
"""

from __future__ import annotations

import pytest

from helpers import random_entries, table1_entries
from repro import (
    DEFAULT_CONFIG,
    ClassificationEngine,
    EngineConfig,
    build_matcher,
    compile_acl,
    parse_acl,
    serve,
)
from repro.apps.conntrack import StatefulFirewall
from repro.apps.firewall import Firewall
from repro.apps.flowmon import FlowMonitor
from repro.apps.l3fwd import L3Forwarder

KEY_LENGTH = 128

ACL = """
permit tcp 10.0.0.0/8 any range 1000 2000
deny ip any 192.0.2.0/24
permit ip any any
"""


class TestEngineConfig:
    def test_defaults_match_module_constant(self):
        assert EngineConfig() == DEFAULT_CONFIG
        assert DEFAULT_CONFIG.cache_size == 4096
        assert DEFAULT_CONFIG.shards == 0

    def test_frozen_and_replace(self):
        config = EngineConfig(cache_size=64)
        with pytest.raises(Exception):  # frozen dataclass
            config.cache_size = 128  # type: ignore[misc]
        derived = config.replace(auto_freeze=True)
        assert derived.cache_size == 64 and derived.auto_freeze is True
        assert config.auto_freeze is False  # original untouched

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cache_size": -1},
            {"invalidation_threshold": -2},
            {"stride": 0},
            {"stride": 31},
            {"shards": -1},
            {"shard_timeout": 0.0},
            {"shard_max_restarts": -1},
        ],
    )
    def test_validation_fails_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_matcher_kind_must_be_string_or_class(self):
        with pytest.raises(TypeError):
            EngineConfig(matcher=42)  # type: ignore[arg-type]

    def test_engine_kwargs_round_trip(self):
        config = EngineConfig(cache_size=7, auto_freeze=True, metrics=True)
        engine = ClassificationEngine(
            build_matcher("palmtrie-plus", table1_entries(), 8), config
        )
        assert engine.config is config
        assert engine.cache.capacity == 7
        assert engine.auto_freeze is True
        assert engine.metrics is not None

    def test_build_kwargs_passes_stride_only_where_accepted(self):
        entries = random_entries(10, KEY_LENGTH, seed=1)
        strided = build_matcher(
            EngineConfig(matcher="palmtrie-plus", stride=4), entries, KEY_LENGTH
        )
        assert strided.stride == 4
        # sorted-list takes no stride; the config must not crash it
        build_matcher(
            EngineConfig(matcher="sorted-list", stride=4), entries, KEY_LENGTH
        )


class TestFromConfig:
    def test_in_process_engine(self):
        matcher = build_matcher("palmtrie-plus", table1_entries(), 8)
        engine = ClassificationEngine.from_config(matcher, EngineConfig(cache_size=16))
        assert isinstance(engine, ClassificationEngine)
        assert engine.cache.capacity == 16

    def test_none_config_uses_defaults(self):
        matcher = build_matcher("palmtrie-plus", table1_entries(), 8)
        engine = ClassificationEngine.from_config(matcher, None)
        assert engine.config == DEFAULT_CONFIG

    def test_sharded_front_end(self):
        from repro.shard import ShardedEngine

        matcher = build_matcher("palmtrie-plus", table1_entries(), 8)
        engine = ClassificationEngine.from_config(
            matcher, EngineConfig(cache_size=16, shards=1)
        )
        try:
            assert isinstance(engine, ShardedEngine)
            assert engine.shards_alive == 1
        finally:
            engine.close()


class TestServeFacade:
    def test_serve_from_text_and_lookup(self):
        engine = serve(ACL, EngineConfig(cache_size=32))
        # the all-zero query falls through to the catch-all permit
        entry = engine.lookup(0)
        assert entry is not None
        assert engine.config.cache_size == 32

    def test_serve_from_rules_and_compiled(self):
        rules = parse_acl(ACL)
        compiled = compile_acl(rules)
        by_rules = serve(rules)
        by_compiled = serve(compiled)
        assert by_rules.lookup(0).value == by_compiled.lookup(0).value

    def test_serve_wraps_bare_matcher(self):
        matcher = build_matcher("palmtrie-plus", table1_entries(), 8)
        engine = serve(matcher)
        assert engine.matcher is matcher

    def test_serve_rejects_garbage(self):
        with pytest.raises(TypeError):
            serve(12345)


class TestDeprecatedKeywordShim:
    """Legacy keyword knobs still work, with one DeprecationWarning."""

    def test_engine_legacy_kwargs_warn_and_apply(self):
        matcher = build_matcher("palmtrie-plus", table1_entries(), 8)
        with pytest.warns(DeprecationWarning, match="ClassificationEngine"):
            engine = ClassificationEngine(matcher, cache_size=9, auto_freeze=True)
        assert engine.cache.capacity == 9
        assert engine.config.auto_freeze is True

    def test_engine_rejects_config_plus_legacy(self):
        matcher = build_matcher("palmtrie-plus", table1_entries(), 8)
        with pytest.raises(TypeError, match="not both"):
            ClassificationEngine(matcher, EngineConfig(), cache_size=9)

    def test_legacy_engine_still_serves_correctly(self):
        import random

        entries = random_entries(30, KEY_LENGTH, seed=3)
        matcher = build_matcher("palmtrie-plus", entries, KEY_LENGTH)
        reference = build_matcher("sorted-list", entries, KEY_LENGTH)
        with pytest.warns(DeprecationWarning):
            engine = ClassificationEngine(matcher, cache_size=64)
        rng = random.Random(41)
        queries = [rng.getrandbits(KEY_LENGTH) for _ in range(50)]
        for _ in range(2):  # second pass hits the cache
            for query, entry in zip(queries, engine.lookup_batch(queries)):
                expected = reference.lookup(query)
                if expected is None:
                    assert entry is None
                else:
                    assert entry.value == expected.value

    @pytest.mark.parametrize(
        "factory, owner",
        [
            (lambda acl, **kw: Firewall(acl, **kw), "Firewall"),
            (
                lambda acl, **kw: FlowMonitor(acl.entries, acl.layout.length, **kw),
                "FlowMonitor",
            ),
            (
                lambda acl, **kw: L3Forwarder(acl, [(0x0A, 8, 1)], **kw),
                "L3Forwarder",
            ),
            (lambda acl, **kw: StatefulFirewall(acl, **kw), "StatefulFirewall"),
        ],
    )
    def test_app_legacy_kwargs_warn(self, factory, owner):
        acl = compile_acl(parse_acl(ACL))
        with pytest.warns(DeprecationWarning, match=owner):
            app = factory(acl, cache_size=8)
        assert app.engine.cache.capacity == 8
        assert app.config.cache_size == 8

    def test_app_config_path_is_silent(self, recwarn):
        acl = compile_acl(parse_acl(ACL))
        for app in (
            Firewall(acl, EngineConfig(cache_size=8)),
            FlowMonitor(acl.entries, acl.layout.length,
                        config=EngineConfig(cache_size=8)),
            L3Forwarder(acl, [(0x0A, 8, 1)], config=EngineConfig(cache_size=8)),
            StatefulFirewall(acl, config=EngineConfig(cache_size=8)),
        ):
            assert app.engine.cache.capacity == 8
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]
