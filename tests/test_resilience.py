"""The resilience plane: fault injection, guarded degradation,
circuit breaking, shadow verification and crash-safe checkpoints.

The load-bearing property is the failure-mode differential: under every
injected fault class (frozen-plane exceptions, cache poisoning,
deserializer corruption, mid-transaction raises, stalls) the guarded
engine must return exactly the verdicts of the linear-scan reference on
a 10k-packet trace — degraded service, never wrong service — and every
fault must be visible in ``report()`` and the metrics mirror.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from helpers import assert_same_result, random_entries

from repro.baselines.sorted_list import SortedListMatcher
from repro.core.plus import PalmtriePlus
from repro.core.serialize import FormatError
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey
from repro.config import EngineConfig
from repro.engine import ClassificationEngine
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    FaultInjector,
    GuardRail,
    InjectedFault,
    injected,
    read_checkpoint,
    recover,
    write_checkpoint,
)

KEY_LENGTH = 16
TRACE_LEN = 10_000


def _entries(seed: int = 3) -> list[TernaryEntry]:
    return random_entries(60, KEY_LENGTH, seed=seed)


def _trace(count: int = TRACE_LEN, seed: int = 11) -> list[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(KEY_LENGTH) for _ in range(count)]


def _reference_verdicts(entries, queries) -> list:
    reference = SortedListMatcher(KEY_LENGTH)
    for entry in entries:
        reference.insert(entry)
    return [reference.lookup(query) for query in queries]


@pytest.fixture(scope="module")
def differential():
    """(entries, queries, truth) shared by the fault-class tests."""
    entries = _entries()
    queries = _trace()
    return entries, queries, _reference_verdicts(entries, queries)


def _assert_verdicts(engine, queries, truth, batch: int = 64) -> None:
    position = 0
    for offset in range(0, len(queries), batch):
        burst = queries[offset : offset + batch]
        for got in engine.lookup_batch(burst):
            assert_same_result(truth[position], got)
            position += 1


# ----------------------------------------------------------------------
# Circuit breaker (deterministic clock)
# ----------------------------------------------------------------------

class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def test_opens_at_threshold_and_backs_off(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, backoff_seconds=1.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 1
        assert not breaker.allow()
        assert breaker.retry_in_seconds == pytest.approx(1.0)

    def test_half_open_probe_success_closes_and_resets_backoff(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, backoff_seconds=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()  # the probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.probes == 1
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.recoveries == 1
        assert breaker.current_backoff_seconds == 1.0

    def test_failed_probe_doubles_backoff_up_to_cap(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, backoff_seconds=1.0, max_backoff_seconds=3.0,
            clock=clock,
        )
        breaker.record_failure()  # open, window 1s
        for expected in (2.0, 3.0, 3.0):  # doubled, then capped
            clock.advance(breaker.current_backoff_seconds)
            assert breaker.allow()
            breaker.record_failure()
            assert breaker.state is BreakerState.OPEN
            assert breaker.current_backoff_seconds == expected

    def test_success_below_threshold_clears_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(backoff_seconds=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(backoff_seconds=2.0, max_backoff_seconds=1.0)


# ----------------------------------------------------------------------
# Fault injector
# ----------------------------------------------------------------------

class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        a = FaultInjector(seed=42)
        b = FaultInjector(seed=42)
        for injector in (a, b):
            injector.arm("frozen_walk", rate=0.3)
        schedule_a = [a.should_fire("frozen_walk") for _ in range(200)]
        schedule_b = [b.should_fire("frozen_walk") for _ in range(200)]
        assert schedule_a == schedule_b
        assert any(schedule_a) and not all(schedule_a)

    def test_budget_exhausts(self):
        injector = FaultInjector(seed=1)
        injector.arm("update", rate=1.0, count=2)
        fired = sum(injector.should_fire("update") for _ in range(10))
        assert fired == 2
        assert not injector.armed("update")

    def test_check_raises_tagged_fault(self):
        injector = FaultInjector(seed=1)
        injector.arm("cache", rate=1.0)
        with pytest.raises(InjectedFault) as excinfo:
            injector.check("cache")
        assert excinfo.value.site == "cache"

    def test_corrupt_is_deterministic_and_flips_bits(self):
        blob = bytes(range(64))
        assert FaultInjector(seed=9).corrupt(blob, flips=3) == FaultInjector(
            seed=9
        ).corrupt(blob, flips=3)
        assert FaultInjector(seed=9).corrupt(blob, flips=3) != blob

    def test_rejects_unknown_site_and_bad_rate(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.arm("nonsense")
        with pytest.raises(ValueError):
            injector.arm("cache", rate=1.5)


# ----------------------------------------------------------------------
# Fault-class differentials (the acceptance bar)
# ----------------------------------------------------------------------

class TestFaultDifferential:
    def test_frozen_walk_faults_never_change_verdicts(self, differential):
        entries, queries, truth = differential
        injector = FaultInjector(seed=7)
        injector.arm("frozen_walk", rate=0.01)
        guard = GuardRail(injector=injector)
        engine = ClassificationEngine(PalmtriePlus.build(entries, KEY_LENGTH, stride=4), EngineConfig(cache_size=256, auto_freeze=True, resilience=guard))
        with injected(injector):
            _assert_verdicts(engine, queries, truth)
        assert injector.fired["frozen_walk"] > 0
        assert guard.faults.get("frozen_walk", 0) > 0
        assert engine.report()["resilience"]["faults"]["frozen_walk"] > 0

    def test_cache_poisoning_is_repaired_by_shadow_verify(self, differential):
        entries, _, _ = differential
        # Flow-skewed traffic: poisoned rows must actually be re-served
        # (a poisoned row only lies when a later packet hits it).
        rng = random.Random(13)
        flows = [rng.getrandbits(KEY_LENGTH) for _ in range(64)]
        queries = [rng.choice(flows) for _ in range(TRACE_LEN)]
        truth = _reference_verdicts(entries, queries)
        injector = FaultInjector(seed=13)
        injector.arm("cache", rate=0.5)
        guard = GuardRail(shadow_sample=1.0, injector=injector)
        engine = ClassificationEngine(PalmtriePlus.build(entries, KEY_LENGTH, stride=4), EngineConfig(cache_size=256, resilience=guard))
        _assert_verdicts(engine, queries, truth)
        assert injector.fired["cache"] > 0
        assert guard.shadow_mismatches > 0
        assert guard.quarantined
        assert engine.health == "quarantined"

    def test_stall_faults_cost_time_not_answers(self, differential):
        entries, queries, truth = differential
        injector = FaultInjector(seed=3, stall_seconds=0.0)
        injector.arm("stall", rate=1.0)
        guard = GuardRail(injector=injector)
        engine = ClassificationEngine(PalmtriePlus.build(entries, KEY_LENGTH, stride=4), EngineConfig(cache_size=256, resilience=guard))
        _assert_verdicts(engine, queries, truth)
        assert injector.fired["stall"] > 0

    def test_mid_transaction_fault_keeps_serving_correctly(self, differential):
        entries, queries, truth = differential
        injector = FaultInjector(seed=5)
        injector.arm("update", rate=1.0, count=1)
        guard = GuardRail(injector=injector)
        engine = ClassificationEngine(PalmtriePlus.build(entries, KEY_LENGTH, stride=4), EngineConfig(cache_size=256, resilience=guard))
        engine.lookup_batch(queries[:512])  # warm the cache pre-fault
        canary = TernaryEntry(
            key=TernaryKey.exact(queries[0], KEY_LENGTH), value=-1, priority=-1
        )
        report = engine.apply_updates([("insert", canary)])
        assert report.error is not None and "InjectedFault" in report.error
        assert report.inserted == 0
        assert guard.faults.get("update", 0) == 1
        _assert_verdicts(engine, queries, truth)

    def test_unguarded_update_fault_still_raises(self, differential):
        entries, queries, _ = differential
        engine = ClassificationEngine(
            PalmtriePlus.build(entries, KEY_LENGTH, stride=4)
        )
        with pytest.raises(ValueError):
            engine.apply_updates([("bogus-op", None)])

    def test_breaker_recovers_once_faults_stop(self, differential):
        """OPEN → (clock advance) HALF_OPEN probe → CLOSED, health ok."""
        entries, queries, truth = differential
        clock = FakeClock()
        injector = FaultInjector(seed=7)
        injector.arm("frozen_walk", rate=1.0, count=3)
        guard = GuardRail(
            failure_threshold=3, backoff_seconds=1.0, injector=injector, clock=clock
        )
        engine = ClassificationEngine(PalmtriePlus.build(entries, KEY_LENGTH, stride=4), EngineConfig(cache_size=0, auto_freeze=True, resilience=guard))
        with injected(injector):
            for offset in range(0, 512, 64):
                engine.lookup_batch(queries[offset : offset + 64])
            assert guard.breaker.state is BreakerState.OPEN
            assert engine.health == "degraded"
            clock.advance(2.0)  # past the backoff window: admit a probe
            _assert_verdicts(engine, queries, truth)
        assert guard.breaker.state is BreakerState.CLOSED
        assert guard.breaker.recoveries >= 1
        assert engine.health == "ok"
        assert guard.last_plane == "frozen"


# ----------------------------------------------------------------------
# Shadow verification details
# ----------------------------------------------------------------------

class TestShadowVerify:
    def test_scalar_hit_path_is_checked_and_repaired(self):
        entries = _entries()
        guard = GuardRail(shadow_sample=1.0)
        engine = ClassificationEngine(PalmtriePlus.build(entries, KEY_LENGTH, stride=4), EngineConfig(cache_size=64, resilience=guard))
        query = _trace(1)[0]
        honest = engine.lookup(query)
        # Poison the cached row by hand, then look the query up again:
        # the shadow must serve the reference answer and repair the row.
        engine.cache._map[query] = None if honest is not None else entries[0]
        repaired = engine.lookup(query)
        assert_same_result(honest, repaired)
        assert guard.quarantined
        assert guard.shadow_mismatches == 1
        assert "shadow_mismatch" in guard.faults

    def test_reset_lifts_quarantine(self):
        guard = GuardRail()
        guard.quarantine("test")
        assert guard.health == "quarantined"
        guard.reset()
        assert guard.health == "ok"
        assert guard.faults.get("shadow_mismatch") == 1  # history is kept

    def test_answers_agree_on_priority_not_identity(self):
        a = TernaryEntry(key=TernaryKey.exact(1, 8), value=1, priority=5)
        b = TernaryEntry(key=TernaryKey.exact(2, 8), value=2, priority=5)
        c = TernaryEntry(key=TernaryKey.exact(3, 8), value=3, priority=6)
        assert GuardRail.answers_agree(a, b)
        assert not GuardRail.answers_agree(a, c)
        assert GuardRail.answers_agree(None, None)
        assert not GuardRail.answers_agree(a, None)


# ----------------------------------------------------------------------
# Crash-safe checkpoints
# ----------------------------------------------------------------------

class TestCheckpoints:
    def test_round_trip_preserves_stamps_and_verdicts(self, tmp_path, differential):
        entries, queries, truth = differential
        source = ClassificationEngine(PalmtriePlus.build(entries, KEY_LENGTH, stride=4))
        source.replace_matcher(PalmtriePlus.build(entries, KEY_LENGTH, stride=4))
        source.matcher.generation = 7
        path = str(tmp_path / "policy.plmc")
        source.checkpoint(path)

        snapshot = read_checkpoint(path)
        assert snapshot.epoch == source.epoch == 1
        assert snapshot.generation == 7
        assert snapshot.matcher.generation == 7

        engine = ClassificationEngine.from_checkpoint(
            path, rebuild=lambda: pytest.fail("valid checkpoint must not rebuild")
        )
        assert engine.checkpoint_restores == 1
        assert engine.checkpoint_rebuilds == 0
        assert engine.epoch == 1
        assert engine.matcher.generation == 7
        _assert_verdicts(engine, queries, truth)

    def test_corrupt_checkpoint_rebuilds_from_source(self, tmp_path, differential):
        entries, queries, truth = differential
        source = ClassificationEngine(PalmtriePlus.build(entries, KEY_LENGTH, stride=4))
        path = str(tmp_path / "policy.plmc")
        source.checkpoint(path)
        blob = bytearray((tmp_path / "policy.plmc").read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        (tmp_path / "policy.plmc").write_bytes(bytes(blob))

        engine = ClassificationEngine.from_checkpoint(
            path, rebuild=lambda: PalmtriePlus.build(entries, KEY_LENGTH, stride=4)
        )
        assert engine.checkpoint_rebuilds == 1
        assert engine.checkpoint_restores == 0
        assert engine.last_recovery.error is not None
        _assert_verdicts(engine, queries, truth)

    def test_missing_checkpoint_rebuilds(self, tmp_path):
        entries = _entries()
        report = recover(
            str(tmp_path / "nope.plmc"),
            rebuild=lambda: PalmtriePlus.build(entries, KEY_LENGTH, stride=4),
        )
        assert not report.restored
        assert report.error is not None and "Error" in report.error

    def test_injected_deserializer_corruption_fails_closed(self, tmp_path):
        """The deserialize hook corrupts payload bytes on the way into
        the PLMF decoder; a validated checkpoint must therefore either
        raise FormatError or decode to a policy — never crash."""
        entries = _entries()
        matcher = PalmtriePlus.build(entries, KEY_LENGTH, stride=4)
        path = str(tmp_path / "policy.plmc")
        write_checkpoint(path, matcher, epoch=1, generation=1)
        rejected = 0
        for seed in range(8):
            injector = FaultInjector(seed=seed)
            injector.arm("deserialize", rate=1.0, count=1)
            with injected(injector):
                try:
                    read_checkpoint(path)
                except FormatError:
                    rejected += 1
        assert rejected > 0  # the corruption is real and caught cleanly

    def test_write_checkpoint_is_atomic_on_failure(self, tmp_path):
        """A matcher the serializer rejects must not clobber (or leave
        debris next to) an existing good checkpoint."""
        entries = _entries()
        path = tmp_path / "policy.plmc"
        write_checkpoint(str(path), PalmtriePlus.build(entries, KEY_LENGTH, stride=4))
        good = path.read_bytes()
        with pytest.raises(TypeError):
            write_checkpoint(str(path), object())
        assert path.read_bytes() == good
        assert list(tmp_path.iterdir()) == [path]


# ----------------------------------------------------------------------
# Matcher replacement (the staleness fix) and engine surface
# ----------------------------------------------------------------------

class TestReplacement:
    def test_matcher_assignment_routes_through_replace(self, differential):
        entries, queries, _ = differential
        engine = ClassificationEngine(PalmtriePlus.build(entries, KEY_LENGTH, stride=4), EngineConfig(cache_size=256))
        engine.lookup_batch(queries[:512])
        # A different policy whose generation counter happens to match
        # the old one: only the epoch stamp can tell them apart.
        replacement_entries = _entries(seed=77)
        replacement = PalmtriePlus.build(replacement_entries, KEY_LENGTH, stride=4)
        assert replacement.generation == engine.matcher.generation
        engine.matcher = replacement
        assert engine.epoch == 1
        assert engine.matcher is replacement
        truth = _reference_verdicts(replacement_entries, queries[:512])
        for query, expected in zip(queries[:512], truth):
            assert_same_result(expected, engine.lookup(query))

    def test_replace_matcher_resets_the_guard(self, differential):
        entries, _, _ = differential
        guard = GuardRail()
        engine = ClassificationEngine(PalmtriePlus.build(entries, KEY_LENGTH, stride=4), EngineConfig(resilience=guard))
        guard.quarantine("poisoned")
        engine.matcher = PalmtriePlus.build(entries, KEY_LENGTH, stride=4)
        assert engine.health == "ok"
        assert not guard.quarantined

    def test_resilience_true_builds_a_default_guard(self):
        engine = ClassificationEngine(PalmtriePlus.build(_entries(), KEY_LENGTH, stride=4), EngineConfig(resilience=True))
        assert isinstance(engine.resilience, GuardRail)
        assert engine.health == "ok"

    def test_unguarded_engine_reports_ok_health(self):
        engine = ClassificationEngine(PalmtriePlus.build(_entries(), KEY_LENGTH, stride=4))
        assert engine.resilience is None
        assert engine.health == "ok"
        assert "resilience" not in engine.report()


# ----------------------------------------------------------------------
# Metrics mirror
# ----------------------------------------------------------------------

class TestMetricsMirror:
    def test_guard_counters_reach_the_exposition(self, differential):
        from repro.obs.export import render_prometheus

        entries, queries, truth = differential
        injector = FaultInjector(seed=7)
        injector.arm("frozen_walk", rate=1.0, count=3)
        guard = GuardRail(injector=injector, backoff_seconds=30.0)
        engine = ClassificationEngine(PalmtriePlus.build(entries, KEY_LENGTH, stride=4), EngineConfig(cache_size=0, auto_freeze=True, metrics=True, resilience=guard))
        with injected(injector):
            _assert_verdicts(engine, queries[:1024], truth[:1024])
        text = render_prometheus(engine.metrics)
        assert 'engine_guard_faults_total{site="frozen_walk"} 3' in text
        assert 'engine_health{state="degraded"} 1' in text
        assert 'engine_breaker_state{state="open"} 1' in text
        assert "engine_degraded_lookups_total" in text
        assert "engine_epoch 0" in text

    def test_checkpoint_recoveries_reach_the_exposition(self, tmp_path):
        from repro.obs.export import render_prometheus

        entries = _entries()
        path = str(tmp_path / "policy.plmc")
        write_checkpoint(path, PalmtriePlus.build(entries, KEY_LENGTH, stride=4))
        engine = ClassificationEngine.from_checkpoint(
            path, rebuild=lambda: None, config=EngineConfig(metrics=True)
        )
        text = render_prometheus(engine.metrics)
        assert 'engine_checkpoint_recoveries_total{path="restored"} 1' in text


# ----------------------------------------------------------------------
# Property: degradation never changes answers
# ----------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    fault_seed=st.integers(0, 2**16),
    rate=st.floats(0.05, 1.0),
)
def test_degradation_never_changes_answers(seed, fault_seed, rate):
    entries = random_entries(20, KEY_LENGTH, seed=seed)
    rng = random.Random(seed + 1)
    queries = [rng.getrandbits(KEY_LENGTH) for _ in range(64)]
    truth = _reference_verdicts(entries, queries)
    injector = FaultInjector(seed=fault_seed)
    injector.arm("frozen_walk", rate=rate)
    engine = ClassificationEngine(PalmtriePlus.build(entries, KEY_LENGTH, stride=4), EngineConfig(cache_size=16, auto_freeze=True, resilience=GuardRail(injector=injector)))
    with injected(injector):
        for query, expected in zip(queries, truth):
            assert_same_result(expected, engine.lookup(query))
        for got, expected in zip(engine.lookup_batch(queries), truth):
            assert_same_result(expected, got)
