"""Unit tests for the sorted-list baseline (repro.baselines.sorted_list)."""

import pytest

from helpers import assert_same_result, oracle_lookup, table1_entries
from repro.baselines.sorted_list import SortedListMatcher
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey


class TestLookup:
    def test_table1(self):
        entries = table1_entries()
        matcher = SortedListMatcher.build(entries, 8)
        for query in range(256):
            assert_same_result(oracle_lookup(entries, query), matcher.lookup(query))

    def test_first_match_is_highest_priority(self):
        matcher = SortedListMatcher(4)
        matcher.insert(TernaryEntry(TernaryKey.from_string("0***"), "low", 1))
        matcher.insert(TernaryEntry(TernaryKey.from_string("01**"), "high", 9))
        assert matcher.lookup(0b0101).value == "high"

    def test_insertion_order_does_not_matter(self):
        entries = table1_entries()
        forward = SortedListMatcher.build(entries, 8)
        backward = SortedListMatcher.build(list(reversed(entries)), 8)
        assert [e.value for e in forward] == [e.value for e in backward]

    def test_empty(self):
        matcher = SortedListMatcher(8)
        assert matcher.lookup(0) is None
        assert len(matcher) == 0


class TestMaintenance:
    def test_iter_is_priority_descending(self):
        matcher = SortedListMatcher.build(table1_entries(), 8)
        priorities = [e.priority for e in matcher]
        assert priorities == sorted(priorities, reverse=True)

    def test_delete(self):
        matcher = SortedListMatcher.build(table1_entries(), 8)
        assert matcher.delete(TernaryKey.from_string("0*1101**"))
        assert len(matcher) == 8
        assert matcher.lookup(0b01110101).value == 8

    def test_delete_missing(self):
        matcher = SortedListMatcher.build(table1_entries(), 8)
        assert not matcher.delete(TernaryKey.from_string("00000000"))

    def test_key_length_check(self):
        matcher = SortedListMatcher(8)
        with pytest.raises(ValueError, match="key length"):
            matcher.insert(TernaryEntry(TernaryKey.wildcard(4), 0, 1))

    def test_memory_is_linear(self):
        matcher = SortedListMatcher.build(table1_entries(), 8)
        assert matcher.memory_bytes() == 9 * (2 * 1 + 8 + 4)


class TestCounted:
    def test_counted_work_is_scan_position(self):
        matcher = SortedListMatcher.build(table1_entries(), 8)
        matcher.stats.reset()
        matcher.profile_lookup(0b00010101)  # entry 3, priority 9: first in list
        assert matcher.stats.key_comparisons == 1
        matcher.stats.reset()
        matcher.profile_lookup(0b11111111)  # only the 1******* floor matches
        assert matcher.stats.key_comparisons == len(matcher)
