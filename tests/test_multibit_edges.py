"""Edge-case tests for Palmtrie_k path compression (repro.core.multibit).

The compressed-edge machinery (rep_steps, mid-edge splits) is the most
intricate part of the structure; these tests construct key sets that
force each split scenario and verify structure invariants afterwards.
"""

from helpers import assert_same_result, oracle_lookup
from repro.core.multibit import EXACT, TERNARY, MultibitPalmtrie, _Internal, _Leaf, key_path
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey


def _entry(text, value=0, priority=1):
    return TernaryEntry(TernaryKey.from_string(text), value, priority)


def _check_invariants(trie: MultibitPalmtrie):
    """Structure invariants: child bit indices strictly below parents,
    max_priority = max over children, rep_steps consistent with keys."""

    def rep_key_below(node):
        while isinstance(node, _Internal):
            node = next(node.children())
        return node.key

    def walk(node):
        if isinstance(node, _Leaf):
            assert node.max_priority == max(e.priority for e in node.entries)
            return
        kids = list(node.children())
        assert kids, "internal node with no children"
        assert node.max_priority == max(k.max_priority for k in kids)
        for kid in kids:
            if isinstance(kid, _Internal):
                assert kid.bit < node.bit
                # The node's own step must appear in every below-key's path.
                below = rep_key_below(kid)
                bits = [s[0] for s in key_path(below, trie.stride)]
                assert kid.bit in bits
            walk(kid)

    walk(trie._root)


class TestSplitScenarios:
    def test_split_inside_compressed_edge_exact_region(self):
        # Keys share two chunks, then share two more (compressed), and a
        # third key diverges in the middle of the compressed edge.
        trie = MultibitPalmtrie(16, stride=4)
        a = _entry("1010" "1100" "0001" "0010", "a", 1)
        b = _entry("1010" "1100" "0001" "0011", "b", 2)
        trie.insert(a)
        trie.insert(b)
        # a and b diverge at the last chunk; the edge from the root slot
        # to their split node skips chunks 2 and 3.
        c = _entry("1010" "1100" "1111" "0010", "c", 3)
        trie.insert(c)
        _check_invariants(trie)
        for query in range(0, 1 << 16, 97):
            assert_same_result(oracle_lookup([a, b, c], query), trie.lookup(query))
        assert trie.lookup(0b1010110000010010).value == "a"
        assert trie.lookup(0b1010110011110010).value == "c"

    def test_split_at_ternary_step_misalignment(self):
        # Wildcards shift chunk boundaries: keys with stars at different
        # positions must diverge at the first step, not corrupt an edge.
        trie = MultibitPalmtrie(12, stride=4)
        entries = [
            _entry("0*10" "0011" "0101", "a", 1),
            _entry("00*0" "0011" "0101", "b", 2),
            _entry("000*" "0011" "0101", "c", 3),
            _entry("0000" "0011" "0101", "d", 4),
        ]
        for entry in entries:
            trie.insert(entry)
        _check_invariants(trie)
        for query in range(1 << 12):
            assert_same_result(oracle_lookup(entries, query), trie.lookup(query))

    def test_divergence_at_negative_bit(self):
        # Keys equal except in the final, negatively-indexed chunk.
        trie = MultibitPalmtrie(10, stride=4)
        entries = [
            _entry("0110011010", "a", 1),
            _entry("0110011011", "b", 2),
            _entry("0110011001", "c", 3),
        ]
        for entry in entries:
            trie.insert(entry)
        _check_invariants(trie)
        for query in range(1 << 10):
            assert_same_result(oracle_lookup(entries, query), trie.lookup(query))

    def test_star_run_shared_edge(self):
        # Entries sharing a long wildcard run (the src=any pattern):
        # the run must be traversed once, not once per entry.
        trie = MultibitPalmtrie(24, stride=8)
        entries = [
            _entry("*" * 16 + f"{i:08b}", i, i + 1) for i in range(8)
        ]
        for entry in entries:
            trie.insert(entry)
        _check_invariants(trie)
        internal, leaves = trie.node_count()
        assert leaves == 8
        # Compression: far fewer internals than the 16 star levels x 8 keys.
        assert internal <= 16 + 8
        for query in range(0, 1 << 24, 10007):
            assert_same_result(oracle_lookup(entries, query), trie.lookup(query))

    def test_rep_steps_survive_rep_deletion(self):
        # Delete the representative entry, then force a split that
        # consults the (stale but valid) rep_steps.
        trie = MultibitPalmtrie(16, stride=4)
        rep = _entry("1010" "1100" "0001" "0010", "rep", 1)
        sibling = _entry("1010" "1100" "0001" "0011", "sib", 2)
        trie.insert(rep)
        trie.insert(sibling)
        assert trie.delete(rep.key)
        newcomer = _entry("1010" "1100" "1111" "0000", "new", 3)
        trie.insert(newcomer)
        _check_invariants(trie)
        live = [sibling, newcomer]
        for query in range(0, 1 << 16, 61):
            assert_same_result(oracle_lookup(live, query), trie.lookup(query))

    def test_all_ternary_slots_of_one_node(self):
        # Fill every don't-care slot of a stride-3 node: *, 0*, 1*,
        # 00*, 01*, 10*, 11* plus all 8 exact chunks.
        trie = MultibitPalmtrie(6, stride=3)
        patterns = ["***", "0**", "1**", "00*", "01*", "10*", "11*"]
        patterns += [f"{i:03b}" for i in range(8)]
        entries = [
            _entry(p + "***" if len(p) == 3 else p, i, i + 1)
            for i, p in enumerate(patterns)
        ]
        for entry in entries:
            trie.insert(entry)
        _check_invariants(trie)
        root = trie._root
        assert all(slot is not None for slot in root.ternaries)
        assert all(slot is not None for slot in root.descendants)
        for query in range(1 << 6):
            assert_same_result(oracle_lookup(entries, query), trie.lookup(query))


class TestKeyPathEdgeCases:
    def test_alternating_stars(self):
        steps = key_path(TernaryKey.from_string("0*0*0*0*"), 4)
        # Every ternary step consumes prefix+star; bits must strictly fall.
        bits = [s[0] for s in steps]
        assert bits == sorted(bits, reverse=True)
        assert all(kind == TERNARY for _bit, kind, _idx in steps)

    def test_stride_equals_key_length(self):
        steps = key_path(TernaryKey.from_string("0110"), 4)
        assert steps == [(0, EXACT, 0b0110)]

    def test_single_bit_key(self):
        assert key_path(TernaryKey.from_string("1"), 1) == [(0, EXACT, 1)]
        assert key_path(TernaryKey.from_string("*"), 1) == [(0, TERNARY, 0)]

    def test_leading_star_full_width(self):
        steps = key_path(TernaryKey.wildcard(8), 8)
        assert steps[0] == (0, TERNARY, 0)
        # One step per star after the first (each consumes one digit).
        assert len(steps) == 8
