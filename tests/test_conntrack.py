"""Unit tests for the stateful firewall (repro.apps.conntrack)."""

import pytest

from repro.acl.compiler import compile_acl
from repro.acl.parser import parse_acl
from repro.acl.rule import Action
from repro.apps.conntrack import ConnState, StatefulFirewall
from repro.packet.headers import PROTO_TCP, PROTO_UDP, PacketHeader

# Outbound-only policy: no `established` rule needed — state handles returns.
ACL = """\
permit tcp 10.0.0.0/8 any
permit udp 10.0.0.0/8 any eq 53
deny ip any any
"""

INSIDE = 0x0A000005
OUTSIDE = 0x08080808


def _fw(**kwargs):
    return StatefulFirewall(compile_acl(parse_acl(ACL)), **kwargs)


def _syn(t=0.0):
    return PacketHeader(INSIDE, OUTSIDE, PROTO_TCP, 40000, 443, 0x02)


def _synack():
    return PacketHeader(OUTSIDE, INSIDE, PROTO_TCP, 443, 40000, 0x12)


def _ack():
    return PacketHeader(INSIDE, OUTSIDE, PROTO_TCP, 40000, 443, 0x10)


class TestHandshake:
    def test_outbound_creates_state_return_fast_paths(self):
        fw = _fw()
        assert fw.check(_syn(), 0.0) is Action.PERMIT
        assert fw.connection_count() == 1
        # The return SYN-ACK would be DENIED by the stateless ACL (no
        # inbound permit); state lets it through.
        assert fw.check(_synack(), 0.1) is Action.PERMIT
        assert fw.fast_path_hits == 1
        assert fw.acl_evaluations == 1

    def test_state_machine_progresses(self):
        fw = _fw()
        fw.check(_syn(), 0.0)
        assert fw.connection_for(_syn()).state is ConnState.NEW
        fw.check(_synack(), 0.1)
        assert fw.connection_for(_syn()).state is ConnState.ESTABLISHED
        fin = PacketHeader(INSIDE, OUTSIDE, PROTO_TCP, 40000, 443, 0x11)
        fw.check(fin, 0.2)
        assert fw.connection_for(_syn()).state is ConnState.CLOSING

    def test_rst_moves_to_closing(self):
        fw = _fw()
        fw.check(_syn(), 0.0)
        rst = PacketHeader(OUTSIDE, INSIDE, PROTO_TCP, 443, 40000, 0x04)
        fw.check(rst, 0.1)
        assert fw.connection_for(_syn()).state is ConnState.CLOSING

    def test_unsolicited_inbound_denied(self):
        fw = _fw()
        assert fw.check(_synack(), 0.0) is Action.DENY
        assert fw.connection_count() == 0

    def test_rule_index_recorded(self):
        fw = _fw()
        fw.check(_syn(), 0.0)
        assert fw.connection_for(_syn()).rule_index == 0


class TestNonTcp:
    def test_udp_immediately_established(self):
        fw = _fw()
        dns = PacketHeader(INSIDE, OUTSIDE, PROTO_UDP, 5353, 53)
        assert fw.check(dns, 0.0) is Action.PERMIT
        assert fw.connection_for(dns).state is ConnState.ESTABLISHED
        reply = PacketHeader(OUTSIDE, INSIDE, PROTO_UDP, 53, 5353)
        assert fw.check(reply, 0.1) is Action.PERMIT

    def test_denied_udp_creates_no_state(self):
        fw = _fw()
        probe = PacketHeader(OUTSIDE, INSIDE, PROTO_UDP, 1000, 2000)
        assert fw.check(probe, 0.0) is Action.DENY
        assert fw.connection_count() == 0


class TestTimeouts:
    def test_idle_flow_expires(self):
        fw = _fw(idle_timeout=10.0)
        fw.check(_syn(), 0.0)
        # After the timeout, the return packet is a table miss -> ACL deny.
        assert fw.check(_synack(), 20.0) is Action.DENY
        assert fw.connection_count() == 0

    def test_closing_expires_faster(self):
        fw = _fw(idle_timeout=100.0, closing_timeout=5.0)
        fw.check(_syn(), 0.0)
        fw.check(PacketHeader(OUTSIDE, INSIDE, PROTO_TCP, 443, 40000, 0x04), 1.0)
        assert fw.expire(now=10.0) == 1
        assert fw.connection_count() == 0

    def test_expire_keeps_fresh_flows(self):
        fw = _fw(idle_timeout=10.0)
        fw.check(_syn(), 0.0)
        assert fw.expire(now=5.0) == 0
        assert fw.connection_count() == 1


class TestTablePressure:
    def test_full_table_fails_closed(self):
        fw = _fw(max_connections=2, idle_timeout=1000.0)
        for i in range(2):
            packet = PacketHeader(INSIDE, OUTSIDE, PROTO_TCP, 40000 + i, 443, 0x02)
            assert fw.check(packet, 0.0) is Action.PERMIT
        extra = PacketHeader(INSIDE, OUTSIDE, PROTO_TCP, 40005, 443, 0x02)
        assert fw.check(extra, 0.1) is Action.DENY
        assert fw.table_full_drops == 1

    def test_full_table_recovers_after_expiry(self):
        fw = _fw(max_connections=1, idle_timeout=5.0)
        fw.check(_syn(), 0.0)
        late = PacketHeader(INSIDE, OUTSIDE, PROTO_TCP, 40001, 443, 0x02)
        assert fw.check(late, 100.0) is Action.PERMIT  # old flow expired

    def test_validation(self):
        with pytest.raises(ValueError, match="timeouts"):
            _fw(idle_timeout=0)
        with pytest.raises(ValueError, match="max_connections"):
            _fw(max_connections=0)
