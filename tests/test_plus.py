"""Unit tests for Palmtrie+ (repro.core.plus, Algorithm 3)."""

import pytest

from helpers import assert_same_result, oracle_lookup, random_entries, table1_entries
from repro.core.multibit import MultibitPalmtrie
from repro.core.plus import PalmtriePlus, _PlusLeaf
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey


class TestCompileEquivalence:
    @pytest.mark.parametrize("stride", [1, 3, 5, 8])
    def test_plus_agrees_with_source(self, stride):
        entries = random_entries(150, 16, seed=21)
        source = MultibitPalmtrie.build(entries, 16, stride=stride)
        plus = PalmtriePlus.from_palmtrie(source)
        for query in range(0, 1 << 16, 97):
            assert_same_result(source.lookup(query), plus.lookup(query))

    def test_table1_all_queries(self):
        entries = table1_entries()
        plus = PalmtriePlus.build(entries, 8, stride=3)
        for query in range(256):
            assert_same_result(oracle_lookup(entries, query), plus.lookup(query))

    def test_counted_agrees_with_plain(self):
        entries = table1_entries()
        plus = PalmtriePlus.build(entries, 8, stride=3)
        for query in range(256):
            a = plus.lookup(query)
            b = plus.profile_lookup(query)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.priority == b.priority

    def test_node_counts_match_source(self):
        entries = random_entries(80, 16, seed=22)
        source = MultibitPalmtrie.build(entries, 16, stride=4)
        plus = PalmtriePlus.from_palmtrie(source)
        assert plus.node_count() == source.node_count()
        assert len(plus) == len(source)


class TestBitmapLayout:
    def test_children_are_contiguous_and_popcount_indexed(self):
        entries = random_entries(60, 12, seed=23)
        plus = PalmtriePlus.build(entries, 12, stride=3)
        # Walk the compiled structure and verify each bitmap bit maps to
        # exactly one array slot, in slot order.
        stack = [plus._root]
        seen = set()
        while stack:
            node = stack.pop()
            if isinstance(node, _PlusLeaf):
                continue
            count_c = node.bitmap_c.bit_count()
            count_t = node.bitmap_t.bit_count()
            for j in range(count_c):
                child = plus._nodes[node.offset_c + j]
                assert id(child) not in seen, "child appears twice"
                seen.add(id(child))
                stack.append(child)
            for j in range(count_t):
                child = plus._nodes[node.offset_t + j]
                assert id(child) not in seen
                seen.add(id(child))
                stack.append(child)
        assert len(seen) == len(plus._nodes)

    def test_memory_much_smaller_than_source(self):
        entries = random_entries(300, 24, seed=24)
        source = MultibitPalmtrie.build(entries, 24, stride=8)
        plus = PalmtriePlus.from_palmtrie(source)
        assert plus.memory_bytes() < source.memory_bytes() / 10


class TestIncrementalUpdate:
    """§3.6: updates go through the source trie plus recompilation."""

    def test_insert_marks_dirty_and_recompiles_on_lookup(self):
        entries = table1_entries()
        plus = PalmtriePlus.build(entries[:-1], 8, stride=3)
        assert plus.lookup(0b10000000) is None  # entry 9 (1*******) missing
        plus.insert(entries[-1])
        assert plus._dirty
        result = plus.lookup(0b10000000)
        assert result is not None and result.value == 9
        assert not plus._dirty

    def test_delete_recompiles(self):
        entries = table1_entries()
        plus = PalmtriePlus.build(entries, 8, stride=3)
        assert plus.delete(TernaryKey.from_string("0*1101**"))
        assert plus.lookup(0b01110101).value == 8

    def test_delete_missing_does_not_dirty(self):
        plus = PalmtriePlus.build(table1_entries(), 8, stride=3)
        assert not plus.delete(TernaryKey.from_string("00000000"))
        assert not plus._dirty

    def test_explicit_compile(self):
        plus = PalmtriePlus(8, stride=3)
        plus.insert(TernaryEntry(TernaryKey.from_string("01**01**"), "x", 3))
        plus.compile()
        assert not plus._dirty
        assert plus.lookup(0b01110111).value == "x"

    def test_source_property(self):
        plus = PalmtriePlus(8, stride=3)
        assert isinstance(plus.source, MultibitPalmtrie)
        assert plus.source.stride == 3

    def test_build_compiles_exactly_once(self):
        """The constructor defers the empty first compile; ``build``
        therefore pays the §3.6 compile cost exactly once."""
        plus = PalmtriePlus.build(table1_entries(), 8, stride=3)
        assert plus.compile_count == 1

    def test_fresh_instance_defers_compile_until_first_read(self):
        plus = PalmtriePlus(8, stride=3)
        assert plus.compile_count == 0
        for entry in table1_entries():
            plus.insert(entry)
        assert plus.compile_count == 0  # still no wasted empty compile
        assert plus.lookup(0b10110011).value == 4
        assert plus.compile_count == 1

    def test_empty_lookup_compiles_lazily(self):
        plus = PalmtriePlus(8, stride=3)
        assert plus.lookup(0b10101010) is None
        assert plus.compile_count == 1


class TestEmptyAndEdgeCases:
    def test_empty_lookup(self):
        plus = PalmtriePlus(8, stride=3)
        assert plus.lookup(0) is None
        assert len(plus) == 0

    def test_single_wildcard_entry(self):
        plus = PalmtriePlus(8, stride=8)
        plus.insert(TernaryEntry(TernaryKey.wildcard(8), "all", 1))
        assert all(plus.lookup(q).value == "all" for q in range(256))

    def test_skipping_flag_propagates(self):
        entries = random_entries(100, 16, seed=25)
        with_skip = PalmtriePlus.build(entries, 16, stride=4, subtree_skipping=True)
        without = PalmtriePlus.build(entries, 16, stride=4, subtree_skipping=False)
        for query in range(0, 1 << 16, 131):
            assert_same_result(without.lookup(query), with_skip.lookup(query))

    def test_entries_roundtrip(self):
        entries = table1_entries()
        plus = PalmtriePlus.build(entries, 8, stride=3)
        assert sorted(e.value for e in plus.entries()) == list(range(1, 10))


class TestAlgorithm3Typo:
    """The paper's Algorithm 3 line 20 tests bitmap_c in the don't care
    loop; the implementation must use bitmap_t (see module docstring)."""

    def test_ternary_only_node(self):
        # A node whose exact bitmap and ternary bitmap differ would give
        # wrong results under the typo'd test.
        entries = [
            TernaryEntry(TernaryKey.from_string("000*0000"), "star", 2),
            TernaryEntry(TernaryKey.from_string("00000000"), "exact", 1),
        ]
        plus = PalmtriePlus.build(entries, 8, stride=8)
        assert plus.lookup(0b00000000).value == "star"  # higher priority
        assert plus.lookup(0b00010000).value == "star"
