"""Unit tests for software-pipelined batch lookup (repro.core.pipeline)."""

import random

import pytest

from helpers import random_entries, table1_entries
from repro.core.pipeline import PipelinedLookup
from repro.core.plus import PalmtriePlus


@pytest.fixture(scope="module")
def plus():
    return PalmtriePlus.build(table1_entries(), 8, stride=3)


class TestCorrectness:
    def test_batch_matches_sequential(self, plus):
        pipeline = PipelinedLookup(plus, batch_size=4)
        queries = list(range(256))
        batch = pipeline.lookup_batch(queries)
        for query, got in zip(queries, batch):
            expected = plus.lookup(query)
            assert (expected is None) == (got is None)
            if expected is not None:
                assert expected.priority == got.priority

    def test_results_in_query_order(self, plus):
        pipeline = PipelinedLookup(plus, batch_size=3)
        queries = [0b01110101, 0b11111111, 0b00100000]
        results = pipeline.lookup_batch(queries)
        assert results[0].value == 5
        assert results[1].value == 9
        assert results[2] is None

    @pytest.mark.parametrize("batch_size", [1, 2, 7, 64])
    def test_any_batch_size(self, plus, batch_size):
        pipeline = PipelinedLookup(plus, batch_size=batch_size)
        queries = list(range(0, 256, 5))
        results = pipeline.lookup_batch(queries)
        for query, got in zip(queries, results):
            expected = plus.lookup(query)
            assert (expected and expected.priority) == (got and got.priority)

    def test_random_large_table(self):
        entries = random_entries(120, 16, seed=61)
        plus = PalmtriePlus.build(entries, 16, stride=4)
        pipeline = PipelinedLookup(plus, batch_size=8)
        rng = random.Random(61)
        queries = [rng.getrandbits(16) for _ in range(300)]
        for query, got in zip(queries, pipeline.lookup_batch(queries)):
            expected = plus.lookup(query)
            assert (expected and expected.priority) == (got and got.priority)

    def test_empty_batch(self, plus):
        assert PipelinedLookup(plus).lookup_batch([]) == []


class TestStats:
    def test_overlap_accounting(self, plus):
        pipeline = PipelinedLookup(plus, batch_size=8)
        pipeline.lookup_batch(list(range(64)))
        stats = pipeline.stats
        assert stats.lookups == 64
        assert stats.visits > 0
        assert 0 < stats.overlapped_visits <= stats.visits
        assert 0 < stats.overlap_fraction <= 1.0

    def test_batch_size_one_never_overlaps(self, plus):
        pipeline = PipelinedLookup(plus, batch_size=1)
        pipeline.lookup_batch(list(range(32)))
        assert pipeline.stats.overlapped_visits == 0
        assert pipeline.stats.overlap_fraction == 0.0

    def test_bigger_batches_overlap_more(self, plus):
        small = PipelinedLookup(plus, batch_size=2)
        large = PipelinedLookup(plus, batch_size=16)
        queries = list(range(128))
        small.lookup_batch(queries)
        large.lookup_batch(queries)
        assert large.stats.overlap_fraction >= small.stats.overlap_fraction

    def test_visits_match_counted_lookup(self, plus):
        pipeline = PipelinedLookup(plus, batch_size=4)
        queries = list(range(0, 256, 3))
        pipeline.lookup_batch(queries)
        plus.stats.reset()
        for query in queries:
            plus.profile_lookup(query)
        assert pipeline.stats.visits == plus.stats.node_visits

    def test_invalid_batch_size(self, plus):
        with pytest.raises(ValueError, match="batch size"):
            PipelinedLookup(plus, batch_size=0)
