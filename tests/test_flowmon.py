"""Unit tests for the flow monitoring application (repro.apps.flowmon)."""

import pytest

from repro.acl.compiler import compile_acl
from repro.acl.parser import parse_acl
from repro.apps.flowmon import FlowMonitor
from repro.packet.headers import PROTO_TCP, PROTO_UDP, PacketHeader

CLASS_ACL = """\
permit udp any eq 53 any
permit tcp any any eq 443
deny ip any any
"""


@pytest.fixture()
def monitor():
    acl = compile_acl(parse_acl(CLASS_ACL))
    return FlowMonitor(acl.entries, idle_timeout=30.0, default_class="unclassified")


def _dns(seq=0):
    return PacketHeader(0x01010101, 0x0A000001 + seq, PROTO_UDP, 53, 5353)


def _https():
    return PacketHeader(0x0A000001, 0x02020202, PROTO_TCP, 40000, 443, 0x18)


class TestClassification:
    def test_classes_assigned_by_rule(self, monitor):
        dns_record = monitor.observe(_dns(), length=80, timestamp=1.0)
        https_record = monitor.observe(_https(), length=1500, timestamp=1.0)
        assert dns_record.traffic_class == 0  # first rule
        assert https_record.traffic_class == 1

    def test_default_class_when_no_match(self):
        monitor = FlowMonitor([], default_class="other")
        record = monitor.observe(_dns(), timestamp=0.0)
        assert record.traffic_class == "other"


class TestAggregation:
    def test_same_flow_aggregates(self, monitor):
        for i in range(5):
            monitor.observe(_https(), length=100, timestamp=float(i))
        assert monitor.active_flows() == 1
        record = next(monitor.flows())
        assert record.packets == 5
        assert record.octets == 500
        assert record.first_seen == 0.0
        assert record.last_seen == 4.0

    def test_distinct_flows_separate(self, monitor):
        monitor.observe(_dns(0), timestamp=0.0)
        monitor.observe(_dns(1), timestamp=0.0)
        assert monitor.active_flows() == 2

    def test_tcp_flags_accumulate(self, monitor):
        monitor.observe(PacketHeader(1, 2, PROTO_TCP, 3, 443, 0x02), timestamp=0.0)
        monitor.observe(PacketHeader(1, 2, PROTO_TCP, 3, 443, 0x10), timestamp=1.0)
        record = next(monitor.flows())
        assert record.tcp_flags_or == 0x12

    def test_class_totals(self, monitor):
        monitor.observe(_dns(), length=80, timestamp=0.0)
        monitor.observe(_dns(), length=80, timestamp=1.0)
        monitor.observe(_https(), length=1000, timestamp=0.0)
        totals = monitor.class_totals()
        assert totals[0] == (2, 160)
        assert totals[1] == (1, 1000)

    def test_global_counters(self, monitor):
        monitor.observe(_dns(), length=80, timestamp=0.0)
        monitor.observe(_https(), length=20, timestamp=0.0)
        assert monitor.packets_seen == 2
        assert monitor.octets_seen == 100


class TestExpiry:
    def test_idle_flows_expire(self, monitor):
        monitor.observe(_dns(), length=80, timestamp=0.0)
        monitor.observe(_https(), length=100, timestamp=50.0)
        expired = monitor.expired()
        assert [r.key[2] for r in expired] == [PROTO_UDP]

    def test_export_removes_and_formats(self, monitor):
        monitor.observe(_dns(), length=80, timestamp=0.0)
        monitor.observe(_https(), length=100, timestamp=50.0)
        exported = monitor.export_expired()
        assert monitor.active_flows() == 1
        (record,) = exported
        assert record["protocolIdentifier"] == PROTO_UDP
        assert record["packetDeltaCount"] == 1
        assert record["octetDeltaCount"] == 80
        assert record["className"] == 0

    def test_active_flow_not_exported(self, monitor):
        monitor.observe(_https(), timestamp=0.0)
        assert monitor.export_expired(now=10.0) == []


class TestValidation:
    def test_bad_timeout(self):
        with pytest.raises(ValueError, match="idle timeout"):
            FlowMonitor([], idle_timeout=0)

    def test_negative_length(self, monitor):
        with pytest.raises(ValueError, match="length"):
            monitor.observe(_dns(), length=-1)

    def test_custom_matcher(self):
        from repro.baselines.sorted_list import SortedListMatcher

        acl = compile_acl(parse_acl(CLASS_ACL))
        custom = SortedListMatcher.build(acl.entries, 128)
        monitor = FlowMonitor(acl.entries, matcher=custom)
        assert monitor.matcher is custom
        assert monitor.observe(_https(), timestamp=0.0).traffic_class == 1
