"""Unit tests for the matcher interface layer (repro.core.table)."""

import pytest

from helpers import table1_entries
from repro.core.table import LookupStats, TernaryEntry, TernaryMatcher, build_matcher
from repro.core.ternary import TernaryKey


class TestTernaryEntry:
    def test_matches_delegates_to_key(self):
        entry = TernaryEntry(TernaryKey.from_string("01*"), "v", 3)
        assert entry.matches(0b010)
        assert entry.matches(0b011)
        assert not entry.matches(0b110)

    def test_frozen(self):
        entry = TernaryEntry(TernaryKey.wildcard(4), "v", 1)
        with pytest.raises(AttributeError):
            entry.priority = 2


class TestLookupStats:
    def test_per_lookup_averages(self):
        stats = LookupStats(node_visits=30, key_comparisons=10, lookups=10)
        assert stats.per_lookup() == {"node_visits": 3.0, "key_comparisons": 1.0}

    def test_per_lookup_with_zero_lookups(self):
        assert LookupStats().per_lookup() == {"node_visits": 0.0, "key_comparisons": 0.0}

    def test_reset(self):
        stats = LookupStats(node_visits=5, key_comparisons=5, lookups=5)
        stats.reset()
        assert stats.node_visits == stats.key_comparisons == stats.lookups == 0


class TestBuildMatcher:
    @pytest.mark.parametrize(
        "kind",
        [
            "sorted-list",
            "palmtrie-basic",
            "palmtrie",
            "palmtrie-plus",
            "dpdk-acl",
            "efficuts",
            "adaptive",
            "tcam",
        ],
    )
    def test_factory_builds_working_matcher(self, kind):
        matcher = build_matcher(kind, table1_entries(), 8)
        result = matcher.lookup(0b01110101)
        assert result is not None and result.priority == 7

    def test_factory_passes_kwargs(self):
        matcher = build_matcher("palmtrie", table1_entries(), 8, stride=4)
        assert matcher.stride == 4

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown matcher kind"):
            build_matcher("btree", [], 8)

    def test_entry_length_validated(self):
        with pytest.raises(ValueError, match="entry key length"):
            build_matcher("sorted-list", table1_entries(), 16)

    def test_lookup_value_default(self):
        matcher = build_matcher("sorted-list", table1_entries(), 8)
        assert matcher.lookup_value(0b01110101) == 5
        empty = build_matcher("sorted-list", [], 8)
        assert empty.lookup_value(0, default="drop") == "drop"


class TestInterfaceContracts:
    def test_key_length_must_be_positive(self):
        from repro.baselines.sorted_list import SortedListMatcher

        with pytest.raises(ValueError, match="positive"):
            SortedListMatcher(0)

    def test_delete_default_unsupported(self):
        class Minimal(TernaryMatcher):
            name = "minimal"

            def insert(self, entry):
                pass

            def lookup(self, query):
                return None

            def __len__(self):
                return 0

        matcher = Minimal(8)
        with pytest.raises(NotImplementedError):
            matcher.delete(TernaryKey.wildcard(8))
        with pytest.raises(NotImplementedError):
            matcher.memory_bytes()
