"""Unit tests for memory accounting and chart rendering (repro.bench)."""

import pytest

from helpers import random_entries, table1_entries
from repro.bench.chart import render_series
from repro.bench.memory import deep_sizeof, memory_comparison
from repro.core.multibit import MultibitPalmtrie
from repro.core.plus import PalmtriePlus


class TestDeepSizeof:
    def test_scalar(self):
        assert deep_sizeof(42) > 0

    def test_counts_container_contents(self):
        assert deep_sizeof([1, 2, 3]) > deep_sizeof([])

    def test_shared_objects_counted_once(self):
        shared = [0] * 100
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof([shared])

    def test_cycles_terminate(self):
        a: list = []
        a.append(a)
        assert deep_sizeof(a) > 0

    def test_slots_objects_walked(self):
        trie = MultibitPalmtrie.build(table1_entries(), 8, stride=3)
        empty = MultibitPalmtrie(8, stride=3)
        assert deep_sizeof(trie) > deep_sizeof(empty)

    def test_grows_with_entries(self):
        small = PalmtriePlus.build(random_entries(20, 16, seed=1), 16, stride=4)
        large = PalmtriePlus.build(random_entries(400, 16, seed=2), 16, stride=4)
        assert deep_sizeof(large) > 3 * deep_sizeof(small)

    def test_memory_comparison_keys(self):
        matcher = PalmtriePlus.build(table1_entries(), 8, stride=3)
        report = memory_comparison(matcher)
        assert report["modeled_c_bytes"] > 0
        assert report["python_bytes"] > report["modeled_c_bytes"]  # CPython overhead


class TestRenderSeries:
    def test_basic_rendering(self):
        text = render_series(
            "Fig X",
            ["D_0", "D_2"],
            {"sorted": [800.0, 200.0], "plus8": [250.0, 240.0]},
            unit=" klps",
        )
        assert "Fig X" in text
        assert "D_0:" in text and "D_2:" in text
        assert "800 klps" in text
        assert "#" in text
        assert "log scale" in text

    def test_none_renders_na(self):
        text = render_series("t", ["a"], {"s": [None]})
        assert "(no data)" in text  # all-None series has no scale
        text = render_series("t", ["a", "b"], {"s": [None, 5.0]})
        assert "N/A" in text

    def test_log_scale_compresses(self):
        text_log = render_series("t", ["x"], {"a": [1.0], "b": [1000.0]}, log=True)
        text_lin = render_series("t", ["x"], {"a": [1.0], "b": [1000.0]}, log=False)

        def bar_length(text, name):
            for line in text.splitlines():
                if line.strip().startswith(name):
                    return line.count("#")
            raise AssertionError(name)

        assert bar_length(text_lin, "a") == 1
        assert bar_length(text_log, "a") >= 1
        assert bar_length(text_log, "b") > bar_length(text_log, "a")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="values for"):
            render_series("t", ["a", "b"], {"s": [1.0]})

    def test_zero_value_minimal_bar(self):
        text = render_series("t", ["a"], {"s": [0.0], "u": [10.0]})
        assert "|" in text
