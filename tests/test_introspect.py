"""Unit tests for trie introspection (repro.core.introspect)."""

import pytest

from helpers import random_entries, table1_entries
from repro.core.basic import BasicPalmtrie
from repro.core.introspect import to_dot, trie_shape
from repro.core.multibit import MultibitPalmtrie


class TestTrieShape:
    def test_empty_basic(self):
        shape = trie_shape(BasicPalmtrie(8))
        assert shape.internal_nodes == shape.leaves == shape.entries == 0
        assert shape.average_leaf_depth == 0.0
        assert shape.average_branching == 0.0
        assert shape.dont_care_fraction == 0.0

    def test_table1_basic(self):
        trie = BasicPalmtrie.build(table1_entries(), 8)
        shape = trie_shape(trie)
        assert shape.leaves == 9
        assert shape.entries == 9
        internal, leaves = trie.node_count()
        assert (shape.internal_nodes, shape.leaves) == (internal, leaves)
        assert shape.height == trie.depth()
        assert sum(shape.leaf_depths.values()) == 9
        assert shape.dont_care_children > 0  # Table 1 keys carry wildcards

    def test_table1_multibit(self):
        trie = MultibitPalmtrie.build(table1_entries(), 8, stride=3)
        shape = trie_shape(trie)
        assert shape.entries == 9
        assert shape.internal_nodes >= 1
        assert 0 < shape.dont_care_fraction <= 1.0

    def test_higher_stride_is_shallower(self):
        entries = random_entries(200, 32, seed=91)
        shallow = trie_shape(MultibitPalmtrie.build(entries, 32, stride=8))
        deep = trie_shape(MultibitPalmtrie.build(entries, 32, stride=1))
        assert shallow.average_leaf_depth < deep.average_leaf_depth
        assert shallow.height <= deep.height

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            trie_shape(object())


class TestDot:
    def test_basic_dot_structure(self):
        trie = BasicPalmtrie.build(table1_entries(), 8)
        dot = to_dot(trie, title="table1")
        assert dot.startswith('digraph "table1"')
        assert dot.rstrip().endswith("}")
        assert dot.count("shape=box") == 9  # one box per leaf
        assert "color=red" in dot  # don't care edges highlighted
        # Every key appears in some label.
        for key, _value, _priority in [("011*1000", 1, 6)]:
            assert key in dot

    def test_multibit_dot(self):
        trie = MultibitPalmtrie.build(table1_entries(), 8, stride=3)
        dot = to_dot(trie)
        assert "bit=5" in dot  # the Figure 4 root
        assert dot.count("->") >= 9

    def test_empty_trie_renders(self):
        dot = to_dot(BasicPalmtrie(8))
        assert dot.startswith("digraph")

    def test_size_guard(self):
        entries = random_entries(400, 16, seed=92)
        trie = BasicPalmtrie.build(entries, 16)
        with pytest.raises(ValueError, match="exceeds"):
            to_dot(trie, max_nodes=50)

    def test_escaping(self):
        dot = to_dot(BasicPalmtrie(8), title='a"b\\c')
        assert '\\"' in dot

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            to_dot(42)
