"""Unit tests for the ACL-to-ternary compiler (repro.acl.compiler)."""

import pytest

from repro.acl.compiler import compile_acl, compile_rule
from repro.acl.layout import LAYOUT_V4, LAYOUT_V6, TCP_ACK, TCP_RST, TCP_SYN
from repro.acl.parser import parse_acl, parse_rule
from repro.acl.rule import Action
from repro.packet.headers import PROTO_ICMP, PROTO_TCP, PROTO_UDP, PacketHeader

TABLE2_ACL = """\
permit ip 192.0.2.0/24 0.0.0.0/0
permit icmp 0.0.0.0/0 192.0.2.0/24
permit udp 0.0.0.0/0 eq 53 192.0.2.0/24
permit tcp 0.0.0.0/0 192.0.2.0/24 established
deny ip 0.0.0.0/0 192.0.2.0/24
"""

INSIDE = 0xC0000205  # 192.0.2.5
OUTSIDE = 0x08080808  # 8.8.8.8


@pytest.fixture(scope="module")
def table2():
    return compile_acl(parse_acl(TABLE2_ACL))


class TestCompileRule:
    def test_simple_rule_is_one_entry(self):
        rule = parse_rule("permit ip 192.0.2.0/24 any")
        entries = compile_rule(rule, value=0, priority=1)
        assert len(entries) == 1
        key = entries[0].key
        src = LAYOUT_V4.field_key(key, "src_ip")
        assert src.to_string() == "110000000000000000000010" + "*" * 8

    def test_established_expands_to_two(self):
        rule = parse_rule("permit tcp any any established")
        entries = compile_rule(rule, value=0, priority=1)
        assert len(entries) == 2
        flags = [LAYOUT_V4.field_key(e.key, "tcp_flags").to_string() for e in entries]
        assert set(flags) == {"***1****", "*****1**"}

    def test_port_range_expands(self):
        rule = parse_rule("permit tcp any gt 1023 any")
        entries = compile_rule(rule, value=0, priority=1)
        assert len(entries) == 6  # the classic ephemeral-range cover

    def test_cross_product_of_ranges_and_flags(self):
        rule = parse_rule("permit tcp any gt 1023 any established")
        entries = compile_rule(rule, value=0, priority=1)
        assert len(entries) == 12

    def test_proto_wildcard_for_ip(self):
        rule = parse_rule("permit ip any any")
        (entry,) = compile_rule(rule, value=0, priority=1)
        assert LAYOUT_V4.field_key(entry.key, "proto").to_string() == "********"

    def test_v6_layout_widens_addresses(self):
        rule = parse_rule("permit ip 192.0.2.0/24 any")
        (entry,) = compile_rule(rule, value=0, priority=1, layout=LAYOUT_V6)
        assert entry.key.length == 512
        src = LAYOUT_V6.field_key(entry.key, "src_ip")
        assert src.length == 128
        assert src.to_string().startswith("110000000000000000000010")
        assert src.to_string().endswith("*" * 104)


class TestCompileAcl:
    def test_table2_entry_count(self, table2):
        # 5 rules; the established rule doubles -> 6 ternary entries.
        assert len(table2.rules) == 5
        assert len(table2.entries) == 6

    def test_priorities_descend_with_rule_order(self, table2):
        priorities = [e.priority for e in table2.entries]
        assert priorities == sorted(priorities, reverse=True)
        assert table2.entries[0].priority == 5

    def test_entry_values_map_to_rules(self, table2):
        assert [e.value for e in table2.entries] == [0, 1, 2, 3, 3, 4]


class TestTable2Semantics:
    """The prose semantics of the paper's Table 2 example ACL."""

    def _action(self, table2, header):
        return table2.action_for(header.to_query())

    def test_outgoing_permitted(self, table2):
        header = PacketHeader(src_ip=INSIDE, dst_ip=OUTSIDE, proto=PROTO_TCP, tcp_flags=TCP_SYN)
        assert self._action(table2, header) is Action.PERMIT

    def test_incoming_icmp_permitted(self, table2):
        header = PacketHeader(src_ip=OUTSIDE, dst_ip=INSIDE, proto=PROTO_ICMP)
        assert self._action(table2, header) is Action.PERMIT

    def test_incoming_dns_response_permitted(self, table2):
        header = PacketHeader(
            src_ip=OUTSIDE, dst_ip=INSIDE, proto=PROTO_UDP, src_port=53, dst_port=5353
        )
        assert self._action(table2, header) is Action.PERMIT

    def test_incoming_udp_other_port_denied(self, table2):
        header = PacketHeader(
            src_ip=OUTSIDE, dst_ip=INSIDE, proto=PROTO_UDP, src_port=54, dst_port=5353
        )
        assert self._action(table2, header) is Action.DENY

    def test_established_tcp_permitted(self, table2):
        for flags in (TCP_ACK, TCP_RST, TCP_ACK | TCP_SYN):
            header = PacketHeader(
                src_ip=OUTSIDE, dst_ip=INSIDE, proto=PROTO_TCP, tcp_flags=flags
            )
            assert self._action(table2, header) is Action.PERMIT

    def test_incoming_syn_denied(self, table2):
        header = PacketHeader(src_ip=OUTSIDE, dst_ip=INSIDE, proto=PROTO_TCP, tcp_flags=TCP_SYN)
        assert self._action(table2, header) is Action.DENY

    def test_unrelated_traffic_implicit_default(self, table2):
        header = PacketHeader(src_ip=OUTSIDE, dst_ip=OUTSIDE, proto=PROTO_TCP)
        # No rule matches; action_for falls back to its default.
        assert table2.action_for(header.to_query()) is Action.DENY
        assert table2.action_for(header.to_query(), default=Action.PERMIT) is Action.PERMIT

    def test_len(self, table2):
        assert len(table2) == 6
