"""The multi-tenant control plane (repro.tenant).

The acceptance gate for canaried rollouts, asserted from the exported
``tenant_*``/``rollout_*`` metric series (never from logs or internal
attributes alone):

* a seeded **bad** policy auto-rolls back — zero wrong verdicts outside
  the canary slice, the canary slice fails closed after the trip, and a
  sibling tenant's verdict stream stays bit-identical to a solo run;
* a seeded **good** policy promotes, and the stable engine serves the
  new policy afterwards.

Plus the units underneath: deterministic canary membership, the token
bucket under a frozen clock, the compiled-policy memory quota, manifest
validation (typos fail loudly), and crash recovery mid-rollout.
"""

from __future__ import annotations

import json

import pytest

from repro.acl.compiler import compile_acl
from repro.acl.parser import parse_acl
from repro.config import EngineConfig
from repro.core.table import build_matcher
from repro.obs import MetricsRegistry, snapshot, validate_snapshot
from repro.resilience import FaultInjector
from repro.resilience.faults import InjectedFault
from repro.tenant import (
    MemoryQuota,
    QuotaExceeded,
    RolloutController,
    SLOGuards,
    TenantRouter,
    TenantSpec,
    TokenBucket,
    canary_member,
    parse_manifest,
)
from repro.workloads.traffic import zipf_trace

SEED = 2020
BATCH = 64

OLD_POLICY = "permit tcp any any eq 80\npermit udp any any\npermit ip any any"
NEW_POLICY = "deny tcp any any eq 80\npermit udp any any\npermit ip any any"
VICTIM_POLICY = "permit tcp any any\npermit ip any any"

#: short guard windows so a 2000-packet trace finishes the verdict;
#: latency ceilings wide open — two identical in-process builds have
#: noisy relative latency, and these tests gate on *correctness*
GUARDS = SLOGuards(
    warmup_packets=16,
    observe_packets=64,
    max_p99_ratio=100.0,
    max_p999_ratio=100.0,
)


def _sig(verdict) -> object:
    return None if verdict is None else (verdict.priority, verdict.value)


def _roller_spec(**overrides) -> TenantSpec:
    kwargs = dict(name="roller", acl=OLD_POLICY, guards=GUARDS, canary_pct=50.0)
    kwargs.update(overrides)
    return TenantSpec(**kwargs)


def _trace(tenant, packets: int, seed: int = SEED) -> list[int]:
    return zipf_trace(tenant.compiled.entries, packets, flows=128, seed=seed)


def _drive_rollout(router, name: str, queries) -> None:
    """Feed batches until the rollout leaves the canary window."""
    tenant = router[name]
    for offset in range(0, len(queries), BATCH):
        router.lookup_batch(name, queries[offset : offset + BATCH])
        if tenant.rollout.state != "canary":
            return
    raise AssertionError("rollout never left the canary window")


def _metric(document: dict, name: str, **labels) -> float:
    """One series' value out of an exported snapshot document."""
    for entry in document["metrics"]:
        if entry["name"] == name and entry["labels"] == labels:
            return entry["value"]
    raise AssertionError(
        f"no series {name}{labels} in snapshot "
        f"(have {[ (e['name'], e['labels']) for e in document['metrics'] ]})"
    )


# ----------------------------------------------------------------------
# Canary membership
# ----------------------------------------------------------------------


class TestCanaryMembership:
    def test_deterministic_and_flow_stable(self):
        queries = [hash(("flow", i)) & (2**104 - 1) for i in range(2000)]
        first = [canary_member(q, SEED, 25.0) for q in queries]
        assert first == [canary_member(q, SEED, 25.0) for q in queries]
        # flow-stable: the same query always lands in the same slice
        assert canary_member(queries[0], SEED, 25.0) == first[0]

    def test_slice_fraction_tracks_pct(self):
        import random

        rng = random.Random(5)
        queries = [rng.getrandbits(104) for _ in range(20_000)]
        for pct in (5.0, 25.0, 75.0):
            hits = sum(canary_member(q, SEED, pct) for q in queries)
            assert abs(hits / len(queries) - pct / 100.0) < 0.02, pct

    def test_seed_moves_the_slice(self):
        import random

        rng = random.Random(6)
        queries = [rng.getrandbits(104) for _ in range(4000)]
        a = [canary_member(q, 1, 25.0) for q in queries]
        b = [canary_member(q, 2, 25.0) for q in queries]
        assert a != b

    def test_bucket_count_rounds_instead_of_truncating(self):
        from repro.tenant.rollout import _canary_buckets

        # int() truncation gave 0.29% -> 28 buckets and anything under
        # 0.01% -> zero buckets (no flow ever canaried)
        assert _canary_buckets(0.29) == 29
        assert _canary_buckets(0.01) == 1
        assert _canary_buckets(0.004) == 0
        assert _canary_buckets(100.0) == 10_000

    def test_tiny_slice_is_nonempty(self):
        import random

        rng = random.Random(7)
        queries = [rng.getrandbits(104) for _ in range(30_000)]
        hits = sum(canary_member(q, SEED, 0.01) for q in queries)
        assert 0 < hits < 30  # ~3 expected at 1/10000

    def test_zero_bucket_pct_rejected_at_begin_canary(self):
        router = TenantRouter([_roller_spec()], clock=lambda: 0.0)
        try:
            roller = router["roller"]
            with pytest.raises(ValueError, match="empty flow slice"):
                roller.stage_rollout(NEW_POLICY, canary_pct=0.004, seed=SEED)
        finally:
            router.close()

    def test_zero_bucket_pct_rejected_at_spec_validation(self):
        with pytest.raises(ValueError, match="empty flow slice"):
            TenantSpec(name="t", acl=VICTIM_POLICY, canary_pct=0.004)

    def test_zero_bucket_pct_is_cli_error_not_traceback(self, tmp_path, capsys):
        from repro.cli import main

        manifest = tmp_path / "fleet.json"
        manifest.write_text(
            json.dumps({"tenants": [{"name": "a", "acl": VICTIM_POLICY}]}),
            encoding="utf-8",
        )
        rules = tmp_path / "new.acl"
        rules.write_text(NEW_POLICY, encoding="utf-8")
        code = main(
            [
                "rollout", "--tenants", str(manifest), "--tenant", "a",
                "--rules", str(rules), "--canary-pct", "0.004",
            ]
        )
        assert code == 2
        assert "empty flow slice" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Quotas
# ----------------------------------------------------------------------


class TestTokenBucket:
    def test_frozen_clock_burst_arithmetic(self):
        bucket = TokenBucket(rate=1.0, burst=8.0, clock=lambda: 0.0)
        grants = [bucket.take(1) for _ in range(12)]
        assert grants == [True] * 8 + [False] * 4
        assert bucket.granted == 8
        assert bucket.denied == 4

    def test_refill_follows_the_clock(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=lambda: now[0])
        assert all(bucket.take(1) for _ in range(5))
        assert not bucket.take(1)
        now[0] = 0.5  # half a second at 10/s -> 5 tokens back
        assert all(bucket.take(1) for _ in range(5))
        assert not bucket.take(1)

    def test_rate_none_disables(self):
        bucket = TokenBucket(rate=None, clock=lambda: 0.0)
        assert all(bucket.take(1) for _ in range(1000))
        assert bucket.denied == 0
        assert bucket.tokens == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=-1.0)


class TestMemoryQuota:
    def _matchers(self):
        small = compile_acl(parse_acl("permit ip any any"))
        lines = "\n".join(f"permit tcp any any eq {p}" for p in range(1, 60))
        big = compile_acl(parse_acl(lines))
        config = EngineConfig()
        return (
            build_matcher(config, small.entries, small.layout.length),
            build_matcher(config, big.entries, big.layout.length),
        )

    def test_admit_and_reject_by_compiled_footprint(self):
        small, big = self._matchers()
        quota = MemoryQuota(small.memory_bytes() + 1)
        assert quota.admit(small, tenant="t") == small.memory_bytes()
        with pytest.raises(QuotaExceeded) as excinfo:
            quota.admit(big, tenant="t")
        assert excinfo.value.kind == "memory"
        assert quota.admitted == 1
        assert quota.rejected == 1
        assert quota.last_bytes == big.memory_bytes()

    def test_unmeasurable_matcher_admits_as_zero(self):
        quota = MemoryQuota(1)
        assert quota.admit(object(), tenant="t") == 0


# ----------------------------------------------------------------------
# Manifest validation
# ----------------------------------------------------------------------


class TestManifest:
    def _doc(self):
        return {
            "tenants": [
                {
                    "name": "alpha",
                    "acl": "permit ip any any",
                    "engine": {"cache_size": 128},
                    "quotas": {"rate": 100.0, "burst": 16.0, "memory_bytes": 10_000},
                    "rollout": {"warmup_packets": 8, "observe_packets": 32},
                    "canary_pct": 25,
                }
            ]
        }

    def test_full_document_round_trip(self):
        (spec,) = parse_manifest(self._doc())
        assert spec.name == "alpha"
        assert spec.engine.cache_size == 128
        assert spec.rate == 100.0
        assert spec.burst == 16.0
        assert spec.memory_bytes == 10_000
        assert spec.guards.warmup_packets == 8
        assert spec.canary_pct == 25.0

    def test_bare_list_accepted(self):
        specs = parse_manifest([{"name": "a", "acl": "permit ip any any"}])
        assert [s.name for s in specs] == ["a"]

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda t: t.__setitem__("quota", {}), "unknown keys"),
            (
                lambda t: t["quotas"].__setitem__("memory", 1),
                "unknown quota keys",
            ),
            (lambda t: t.pop("acl"), "exactly one of"),
            (
                lambda t: t.__setitem__("rules", "also.acl"),
                "exactly one of",
            ),
            (
                lambda t: t["engine"].__setitem__("no_such_knob", 1),
                "bad engine config",
            ),
            (
                lambda t: t["rollout"].__setitem__("no_such_guard", 1),
                "bad rollout guards",
            ),
        ],
    )
    def test_typos_fail_loudly(self, mutate, fragment):
        doc = self._doc()
        mutate(doc["tenants"][0])
        with pytest.raises(ValueError, match=fragment):
            parse_manifest(doc)

    def test_duplicate_names_rejected(self):
        doc = {
            "tenants": [
                {"name": "a", "acl": "permit ip any any"},
                {"name": "a", "acl": "permit ip any any"},
            ]
        }
        with pytest.raises(ValueError, match="duplicate"):
            parse_manifest(doc)

    def test_empty_manifest_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            parse_manifest({"tenants": []})

    def test_json_file_loads_regardless_of_extension(self, tmp_path):
        from repro.tenant import load_manifest

        path = tmp_path / "fleet.yaml"  # JSON body: must load without PyYAML
        path.write_text(json.dumps(self._doc()), encoding="utf-8")
        (spec,) = load_manifest(str(path))
        assert spec.name == "alpha"

    def test_yaml_file_loads_when_pyyaml_present(self, tmp_path):
        pytest.importorskip("yaml")
        from repro.tenant import load_manifest

        path = tmp_path / "fleet.yaml"
        path.write_text(
            "tenants:\n"
            "  - name: alpha\n"
            "    acl: permit ip any any\n"
            "    quotas:\n"
            "      rate: 50\n",
            encoding="utf-8",
        )
        (spec,) = load_manifest(str(path))
        assert spec.name == "alpha"
        assert spec.rate == 50


# ----------------------------------------------------------------------
# Admission control on the serving path
# ----------------------------------------------------------------------


class TestAdmission:
    def test_rate_denial_is_fail_closed_and_exported(self):
        registry = MetricsRegistry()
        router = TenantRouter(
            [TenantSpec(name="t", acl=VICTIM_POLICY, rate=1.0, burst=16.0)],
            metrics=registry,
            clock=lambda: 0.0,
        )
        try:
            queries = _trace(router["t"], 100)
            verdicts = router.lookup_batch("t", queries)
            # the first 16 tokens serve; every later packet is denied None
            assert all(v is not None for v in verdicts[:16])
            assert all(v is None for v in verdicts[16:])
            doc = snapshot(registry)
            assert validate_snapshot(doc) == []
            assert _metric(doc, "tenant_lookups_total", tenant="t") == 100
            assert _metric(doc, "tenant_denied_total", tenant="t", reason="rate") == 84
            assert _metric(doc, "tenant_denied_total", tenant="t", reason="memory") == 0
            assert _metric(doc, "tenant_engine_health", tenant="t", state="ok") == 1.0
        finally:
            router.close()

    def test_build_time_memory_quota_blocks_boot(self):
        with pytest.raises(QuotaExceeded):
            TenantRouter([TenantSpec(name="t", acl=VICTIM_POLICY, memory_bytes=1)])

    def test_staged_policy_over_quota_never_serves(self):
        compiled = compile_acl(parse_acl(OLD_POLICY))
        config = EngineConfig()
        footprint = build_matcher(
            config, compiled.entries, compiled.layout.length
        ).memory_bytes()
        router = TenantRouter(
            [_roller_spec(memory_bytes=footprint + 1)], clock=lambda: 0.0
        )
        try:
            roller = router["roller"]
            lines = "\n".join(f"permit tcp any any eq {p}" for p in range(1, 60))
            with pytest.raises(QuotaExceeded):
                roller.stage_rollout(lines, seed=SEED)
            assert roller.rollout.state == "idle"
            # the old policy still serves
            assert any(
                v is not None for v in router.lookup_batch("roller", _trace(roller, 64))
            )
        finally:
            router.close()

    def test_unknown_tenant_names_the_fleet(self):
        router = TenantRouter([TenantSpec(name="a", acl=VICTIM_POLICY)])
        try:
            with pytest.raises(KeyError, match="serving"):
                router.lookup("nobody", 1)
        finally:
            router.close()


# ----------------------------------------------------------------------
# The e2e gate: good policy promotes
# ----------------------------------------------------------------------


class TestRolloutPromote:
    def test_good_policy_promotes_and_serves(self):
        registry = MetricsRegistry()
        router = TenantRouter([_roller_spec()], metrics=registry, clock=lambda: 0.0)
        try:
            roller = router["roller"]
            queries = _trace(roller, 2000, seed=SEED + 3)
            roller.stage_rollout(NEW_POLICY, seed=SEED)
            _drive_rollout(router, "roller", queries)
            assert roller.rollout.state == "promoted"

            # the verdict is in the exported series, not just attributes
            doc = snapshot(registry)
            assert validate_snapshot(doc) == []
            assert _metric(doc, "rollout_promotes_total", tenant="roller") == 1
            assert _metric(doc, "rollout_state", tenant="roller", state="promoted") == 1.0
            assert _metric(doc, "rollout_state", tenant="roller", state="canary") == 0.0
            assert (
                _metric(doc, "rollout_transitions_total", tenant="roller", to="promoted")
                == 1
            )
            canaried = _metric(
                doc, "rollout_canary_packets_total", tenant="roller", slice="canary"
            )
            stable = _metric(
                doc, "rollout_canary_packets_total", tenant="roller", slice="stable"
            )
            assert canaried > 0 and stable > 0
            assert (
                _metric(doc, "rollout_shadow_mismatches_total", tenant="roller") == 0
            )

            # the stable engine now answers with the NEW policy
            new = compile_acl(parse_acl(NEW_POLICY))
            reference = build_matcher("sorted-list", new.entries, new.layout.length)
            tail = queries[:512]
            got = [_sig(v) for v in router.lookup_batch("roller", tail)]
            want = [_sig(reference.lookup(q)) for q in tail]
            assert got == want
        finally:
            router.close()

    def test_stage_requires_terminal_state(self):
        router = TenantRouter([_roller_spec()], clock=lambda: 0.0)
        try:
            roller = router["roller"]
            roller.stage_rollout(NEW_POLICY, seed=SEED)
            with pytest.raises(RuntimeError, match="cannot stage"):
                roller.rollout.stage(object())
        finally:
            router.close()


# ----------------------------------------------------------------------
# The e2e gate: bad policy auto-rolls back, contained to the canary slice
# ----------------------------------------------------------------------


class TestRolloutRollback:
    def test_bad_policy_rolls_back_contained_with_identical_sibling(self):
        packets = 2000
        registry = MetricsRegistry()
        injector = FaultInjector(seed=7)
        injector.arm("cache", rate=1.0)  # poison the canary's flow cache
        router = TenantRouter(
            [TenantSpec(name="victim", acl=VICTIM_POLICY), _roller_spec()],
            metrics=registry,
            injector=injector,
            clock=lambda: 0.0,
        )
        solo_router = TenantRouter([TenantSpec(name="victim", acl=VICTIM_POLICY)])
        try:
            roller = router["roller"]
            roller_q = _trace(roller, packets, seed=SEED + 3)
            victim_q = _trace(router["victim"], packets, seed=SEED + 1)

            old = compile_acl(parse_acl(OLD_POLICY))
            reference = build_matcher("sorted-list", old.entries, old.layout.length)
            truth: dict[int, object] = {}

            roller.stage_rollout(NEW_POLICY, seed=SEED)
            pct, seed = roller.rollout.canary_pct, roller.rollout.seed

            wrong_outside_canary = 0
            victim_sigs: list[object] = []
            solo_sigs: list[object] = []
            for offset in range(0, packets, BATCH):
                state_before = roller.rollout.state
                batch = roller_q[offset : offset + BATCH]
                verdicts = router.lookup_batch("roller", batch)
                for query, verdict in zip(batch, verdicts):
                    if state_before == "canary" and canary_member(query, seed, pct):
                        continue  # only the canary slice may differ
                    if query not in truth:
                        truth[query] = _sig(reference.lookup(query))
                    wrong_outside_canary += _sig(verdict) != truth[query]
                v_batch = victim_q[offset : offset + BATCH]
                victim_sigs.extend(_sig(v) for v in router.lookup_batch("victim", v_batch))
                solo_sigs.extend(
                    _sig(v) for v in solo_router.lookup_batch("victim", v_batch)
                )

            # 1. the rollout auto-rolled back on the shadow-mismatch guard
            assert roller.rollout.state == "rolled_back"
            doc = snapshot(registry)
            assert validate_snapshot(doc) == []
            assert (
                _metric(
                    doc,
                    "rollout_rollbacks_total",
                    tenant="roller",
                    reason="shadow-mismatch",
                )
                == 1
            )
            assert (
                _metric(doc, "rollout_state", tenant="roller", state="rolled_back")
                == 1.0
            )
            assert _metric(doc, "rollout_shadow_mismatches_total", tenant="roller") > 0

            # 2. after the trip, the canary slice failed closed (None), and
            #    the fail-closed packets are in the exported slice counter
            assert (
                _metric(
                    doc,
                    "rollout_canary_packets_total",
                    tenant="roller",
                    slice="failclosed",
                )
                > 0
            )

            # 3. zero wrong verdicts ever escaped the canary slice
            assert wrong_outside_canary == 0

            # 4. the sibling tenant is bit-identical to its solo run
            assert victim_sigs == solo_sigs

            # 5. the restored engine serves the OLD policy again
            tail = roller_q[:256]
            got = [_sig(v) for v in router.lookup_batch("roller", tail)]
            want = [_sig(reference.lookup(q)) for q in tail]
            assert got == want
        finally:
            solo_router.close()
            router.close()

    def test_operator_rollback(self):
        router = TenantRouter([_roller_spec()], clock=lambda: 0.0)
        try:
            roller = router["roller"]
            roller.stage_rollout(NEW_POLICY, seed=SEED)
            router.lookup_batch("roller", _trace(roller, BATCH))
            if roller.rollout.state == "canary":
                roller.rollout.rollback()
            assert roller.rollout.state in ("rolled_back", "promoted")
            if roller.rollout.state == "rolled_back":
                assert roller.rollout.last_verdict["reason"] == "operator"
        finally:
            router.close()


# ----------------------------------------------------------------------
# Crash recovery mid-rollout
# ----------------------------------------------------------------------


class TestCrashRecovery:
    def test_crash_in_promote_window_recovers_rolled_back(self, tmp_path):
        ckpt_dir = str(tmp_path / "state")
        injector = FaultInjector(seed=17)
        injector.arm("rollout", rate=1.0, count=1)  # kill inside promote
        registry = MetricsRegistry()
        router = TenantRouter(
            [_roller_spec()],
            metrics=registry,
            injector=injector,
            checkpoint_dir=ckpt_dir,
            clock=lambda: 0.0,
        )
        roller = router["roller"]
        queries = _trace(roller, 2000, seed=SEED + 3)
        roller.stage_rollout(NEW_POLICY, seed=SEED)
        crashed = False
        try:
            _drive_rollout(router, "roller", queries)
        except InjectedFault as fault:
            crashed = True
            assert fault.site == "rollout"
        assert crashed, "the rollout fault site never fired"
        router.close()

        # the persisted sidecar still says CANARY — the crash window
        sidecar = f"{ckpt_dir}/roller.rollout.json"
        doc = RolloutController.read_state(sidecar)
        assert doc is not None and doc["state"] == "canary"

        # supervisor restart: recover=True must land the tenant coherent
        recovery_registry = MetricsRegistry()
        revived = TenantRouter(
            [_roller_spec()],
            metrics=recovery_registry,
            checkpoint_dir=ckpt_dir,
            clock=lambda: 0.0,
            recover=True,
        )
        try:
            roller = revived["roller"]
            assert roller.rollout.state == "rolled_back"
            assert roller.rollout.last_verdict["reason"] == "crash-recovery"
            assert roller.engine.checkpoint_restores == 1

            exported = snapshot(recovery_registry)
            assert (
                _metric(
                    exported,
                    "rollout_rollbacks_total",
                    tenant="roller",
                    reason="crash-recovery",
                )
                == 1
            )

            # and it serves the last-good OLD policy, exactly
            old = compile_acl(parse_acl(OLD_POLICY))
            reference = build_matcher("sorted-list", old.entries, old.layout.length)
            tail = queries[:512]
            got = [_sig(v) for v in revived.lookup_batch("roller", tail)]
            want = [_sig(reference.lookup(q)) for q in tail]
            assert got == want

            # the sidecar now records the terminal state durably
            doc = RolloutController.read_state(sidecar)
            assert doc["state"] == "rolled_back"
        finally:
            revived.close()


# ----------------------------------------------------------------------
# Update-transaction quota rollback (no checkpoint_dir required)
# ----------------------------------------------------------------------


class TestUpdateQuotaRollback:
    def test_over_quota_update_is_undone_without_checkpoint_dir(self):
        compiled = compile_acl(parse_acl(OLD_POLICY))
        config = EngineConfig()
        footprint = build_matcher(
            config, compiled.entries, compiled.layout.length
        ).memory_bytes()
        # enough headroom to boot, not enough for the bloated update;
        # crucially: NO checkpoint_dir, so the last-good stamp must
        # work through the in-memory blob
        router = TenantRouter(
            [_roller_spec(memory_bytes=footprint + 64)], clock=lambda: 0.0
        )
        try:
            roller = router["roller"]
            reference = build_matcher(
                "sorted-list", compiled.entries, compiled.layout.length
            )
            queries = _trace(roller, 256)

            lines = "\n".join(f"permit tcp any any eq {p}" for p in range(1, 60))
            bloat = compile_acl(parse_acl(lines))
            with pytest.raises(QuotaExceeded):
                roller.apply_updates([("insert", e) for e in bloat.entries])

            assert roller.quota.rejected == 1
            # the tenant still serves the PRE-update policy, exactly
            got = [_sig(v) for v in router.lookup_batch("roller", queries)]
            want = [_sig(reference.lookup(q)) for q in queries]
            assert got == want
        finally:
            router.close()

    def test_in_quota_update_is_kept(self):
        router = TenantRouter([_roller_spec(memory_bytes=10**9)], clock=lambda: 0.0)
        try:
            roller = router["roller"]
            extra = compile_acl(parse_acl("deny udp any any eq 53\n" + OLD_POLICY))
            report = roller.apply_updates([("insert", extra.entries[0])])
            assert report.inserted == 1
            assert roller.quota.last_bytes > 0
        finally:
            router.close()


# ----------------------------------------------------------------------
# Latency guards need a stable baseline
# ----------------------------------------------------------------------


class TestLatencyBaselineEvidence:
    def test_full_slice_canary_promotes_on_shadow_alone_and_says_so(self):
        router = TenantRouter([_roller_spec(canary_pct=100.0)], clock=lambda: 0.0)
        try:
            roller = router["roller"]
            queries = _trace(roller, 2000, seed=SEED + 3)
            roller.stage_rollout(NEW_POLICY, seed=SEED)
            _drive_rollout(router, "roller", queries)
            assert roller.rollout.state == "promoted"
            verdict = roller.rollout.last_verdict
            assert verdict["latency_ratios"] is None
            assert "skipped" in verdict["latency_guards"]
            assert roller.rollout.stable_packets == 0
        finally:
            router.close()

    def test_partial_slice_waits_for_stable_traffic(self):
        router = TenantRouter([_roller_spec()], clock=lambda: 0.0)
        try:
            roller = router["roller"]
            roller.stage_rollout(NEW_POLICY, seed=SEED)
            pct, seed = roller.rollout.canary_pct, roller.rollout.seed
            pool = _trace(roller, 4000, seed=SEED + 3)
            canary_only = [q for q in pool if canary_member(q, seed, pct)]
            stable_only = [q for q in pool if not canary_member(q, seed, pct)]
            assert len(canary_only) > 300 and len(stable_only) > 300

            # feed ONLY canary-member flows: the observation window
            # completes but there is no baseline — must keep observing,
            # not promote on vacuous 0.0 ratios
            for offset in range(0, 300, BATCH):
                router.lookup_batch("roller", canary_only[offset : offset + BATCH])
            assert roller.rollout._observed >= roller.rollout.guards.observe_packets
            assert roller.rollout.state == "canary"

            # stable traffic arrives -> the verdict lands with evidence
            for offset in range(0, len(stable_only), BATCH):
                router.lookup_batch("roller", stable_only[offset : offset + BATCH])
                if roller.rollout.state != "canary":
                    break
            assert roller.rollout.state == "promoted"
            assert roller.rollout.last_verdict["latency_ratios"] is not None
        finally:
            router.close()


# ----------------------------------------------------------------------
# Sharded tenants: the rollout contract over ShardedEngine
# ----------------------------------------------------------------------


def _published_is_current(engine) -> bool:
    """The sharded plane publication matches the inner engine's
    coherence stamp (i.e. no lazy-republish debt outstanding)."""
    return engine._published_for == (
        engine.inner.epoch,
        getattr(engine.inner.matcher, "generation", 0),
    )


class TestShardedRollout:
    def test_good_policy_promotes_on_sharded_engine(self):
        router = TenantRouter(
            [_roller_spec(engine=EngineConfig(shards=2))], clock=lambda: 0.0
        )
        try:
            roller = router["roller"]
            from repro.shard import ShardedEngine

            assert isinstance(roller.engine, ShardedEngine)
            queries = _trace(roller, 2000, seed=SEED + 3)
            roller.stage_rollout(NEW_POLICY, seed=SEED)
            _drive_rollout(router, "roller", queries)
            assert roller.rollout.state == "promoted"
            assert _published_is_current(roller.engine)

            new = compile_acl(parse_acl(NEW_POLICY))
            reference = build_matcher("sorted-list", new.entries, new.layout.length)
            tail = queries[:512]
            got = [_sig(v) for v in router.lookup_batch("roller", tail)]
            want = [_sig(reference.lookup(q)) for q in tail]
            assert got == want
        finally:
            router.close()

    def test_bad_policy_rolls_back_and_workers_remap_eagerly(self):
        injector = FaultInjector(seed=7)
        injector.arm("cache", rate=1.0)  # poison the canary's flow cache
        router = TenantRouter(
            [_roller_spec(engine=EngineConfig(shards=2))],
            injector=injector,
            clock=lambda: 0.0,
        )
        try:
            roller = router["roller"]
            queries = _trace(roller, 2000, seed=SEED + 3)
            roller.stage_rollout(NEW_POLICY, seed=SEED)
            _drive_rollout(router, "roller", queries)
            assert roller.rollout.state == "rolled_back"
            # restore_last_good force-republished: the shared plane is
            # already coherent with the restored policy, BEFORE any
            # further batch triggers a lazy stamp check
            assert _published_is_current(roller.engine)

            old = compile_acl(parse_acl(OLD_POLICY))
            reference = build_matcher("sorted-list", old.entries, old.layout.length)
            tail = queries[:512]
            got = [_sig(v) for v in router.lookup_batch("roller", tail)]
            want = [_sig(reference.lookup(q)) for q in tail]
            assert got == want
        finally:
            router.close()


# ----------------------------------------------------------------------
# Recovery re-enforces the memory quota
# ----------------------------------------------------------------------


class TestRecoveryQuota:
    def _boot_and_checkpoint(self, tmp_path, **spec_overrides):
        ckpt_dir = str(tmp_path / "state")
        router = TenantRouter(
            [_roller_spec(**spec_overrides)],
            checkpoint_dir=ckpt_dir,
            clock=lambda: 0.0,
        )
        router["roller"].engine.mark_last_good()
        router.close()
        return ckpt_dir

    def test_recovered_policy_is_measured_and_admitted(self, tmp_path):
        ckpt_dir = self._boot_and_checkpoint(tmp_path)
        revived = TenantRouter(
            [_roller_spec(memory_bytes=10**9)],
            checkpoint_dir=ckpt_dir,
            clock=lambda: 0.0,
            recover=True,
        )
        try:
            roller = revived["roller"]
            assert roller.engine.checkpoint_restores == 1
            # the quota saw the recovered matcher (metrics no longer
            # report 0 bytes until the first update)
            assert roller.quota.last_bytes > 0
            assert roller.quota.admitted == 1
        finally:
            revived.close()

    def test_recovery_over_a_tightened_quota_fails_closed(self, tmp_path):
        ckpt_dir = self._boot_and_checkpoint(tmp_path)
        with pytest.raises(QuotaExceeded):
            TenantRouter(
                [_roller_spec(memory_bytes=1)],
                checkpoint_dir=ckpt_dir,
                clock=lambda: 0.0,
                recover=True,
            )
