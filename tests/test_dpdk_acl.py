"""Unit tests for the DPDK-ACL-style baseline (repro.baselines.dpdk_acl)."""

import pytest

from helpers import assert_same_result, oracle_lookup, random_entries, table1_entries
from repro.baselines.dpdk_acl import BuildExplosionError, DpdkStyleAcl
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey


class TestCorrectness:
    def test_table1(self):
        entries = table1_entries()
        matcher = DpdkStyleAcl.build(entries, 8)
        for query in range(256):
            assert_same_result(oracle_lookup(entries, query), matcher.lookup(query))

    def test_random_tables(self):
        entries = random_entries(60, 16, seed=31)
        matcher = DpdkStyleAcl.build(entries, 16)
        for query in range(0, 1 << 16, 173):
            assert_same_result(oracle_lookup(entries, query), matcher.lookup(query))

    def test_counted_agrees(self):
        entries = table1_entries()
        matcher = DpdkStyleAcl.build(entries, 8)
        for query in range(0, 256, 7):
            a = matcher.lookup(query)
            b = matcher.profile_lookup(query)
            assert (a is None) == (b is None)

    def test_empty_table(self):
        matcher = DpdkStyleAcl.build([], 8)
        assert matcher.lookup(0) is None


class TestStructure:
    def test_lookup_depth_bounded_by_key_bytes(self):
        entries = random_entries(40, 16, seed=32)
        matcher = DpdkStyleAcl.build(entries, 16)
        matcher.stats.reset()
        for query in range(0, 1 << 16, 509):
            matcher.profile_lookup(query)
        assert matcher.stats.per_lookup()["node_visits"] <= 2  # 16-bit key = 2 bytes

    def test_early_resolution_on_wildcard_tail(self):
        # A single all-wildcard top-priority rule resolves at the root.
        entries = [TernaryEntry(TernaryKey.wildcard(16), "any", 9)]
        matcher = DpdkStyleAcl.build(entries, 16)
        assert matcher.state_count == 0
        assert matcher.lookup(1234).value == "any"

    def test_state_explosion_guard(self):
        entries = random_entries(120, 32, seed=33)
        with pytest.raises(BuildExplosionError):
            DpdkStyleAcl.build(entries, 32, state_limit=10)

    def test_key_length_must_be_byte_aligned(self):
        with pytest.raises(ValueError, match="multiple of 8"):
            DpdkStyleAcl(12)

    def test_no_incremental_updates(self):
        matcher = DpdkStyleAcl.build(table1_entries(), 8)
        with pytest.raises(NotImplementedError):
            matcher.insert(TernaryEntry(TernaryKey.wildcard(8), 0, 0))

    def test_memory_scales_with_states(self):
        small = DpdkStyleAcl.build(random_entries(20, 16, seed=34), 16)
        large = DpdkStyleAcl.build(random_entries(80, 16, seed=35), 16)
        assert large.state_count > small.state_count
        assert large.memory_bytes() > small.memory_bytes()

    def test_entry_length_mismatch(self):
        with pytest.raises(ValueError, match="key length"):
            DpdkStyleAcl.build([TernaryEntry(TernaryKey.wildcard(8), 0, 1)], 16)


class TestTrieSplitting:
    """librte_acl-style multi-trie builds (max_tries > 1)."""

    @pytest.mark.parametrize("tries", [1, 2, 4])
    def test_correctness_with_splitting(self, tries):
        entries = random_entries(70, 16, seed=36)
        matcher = DpdkStyleAcl.build(entries, 16, max_tries=tries)
        for query in range(0, 1 << 16, 211):
            assert_same_result(oracle_lookup(entries, query), matcher.lookup(query))

    def test_split_reduces_states(self):
        from repro.workloads.campus import campus_acl

        entries = list(campus_acl(4).entries)
        single = DpdkStyleAcl.build(entries, 128, max_tries=1)
        split = DpdkStyleAcl.build(entries, 128, max_tries=8)
        assert split.state_count < single.state_count
        assert split.trie_count > 1

    def test_group_budget_respected(self):
        entries = random_entries(60, 16, seed=37)
        matcher = DpdkStyleAcl.build(entries, 16, max_tries=3)
        assert matcher.trie_count <= 3

    def test_lookup_depth_scales_with_tries(self):
        entries = random_entries(60, 16, seed=38)
        single = DpdkStyleAcl.build(entries, 16, max_tries=1)
        split = DpdkStyleAcl.build(entries, 16, max_tries=4)
        single.stats.reset()
        split.stats.reset()
        for query in range(0, 1 << 16, 509):
            single.profile_lookup(query)
            split.profile_lookup(query)
        assert (
            split.stats.per_lookup()["node_visits"]
            >= single.stats.per_lookup()["node_visits"]
        )

    def test_invalid_max_tries(self):
        with pytest.raises(ValueError, match="max_tries"):
            DpdkStyleAcl(16, max_tries=0)

    def test_empty_with_splitting(self):
        matcher = DpdkStyleAcl.build([], 16, max_tries=4)
        assert matcher.lookup(0) is None
        assert matcher.trie_count == 0
