"""Fuzz and failure-injection tests.

Every external input surface must fail *closed*: malformed ACL text,
packet bytes, serialized tables and trace files must raise their
documented exception types — never crash with something else, never
silently mis-decode.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.acl.parser import AclParseError, parse_acl, parse_rule
from repro.core.frozen import freeze
from repro.core.plus import PalmtriePlus
from repro.core.serialize import (
    FormatError,
    deserialize_frozen,
    deserialize_plus,
    serialize_frozen,
    serialize_plus,
)
from repro.core.table import TernaryEntry
from repro.core.ternary import TernaryKey
from repro.packet.codec import PacketDecodeError, decode_packet, encode_packet
from repro.packet.headers import PacketHeader
from repro.workloads.io import TraceFormatError, load_trace, save_trace


# ----------------------------------------------------------------------
# ACL parser
# ----------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(text=st.text(max_size=120))
def test_parse_rule_never_crashes(text):
    try:
        rule = parse_rule(text)
    except AclParseError:
        return
    # Anything accepted must render back and re-parse identically.
    assert parse_rule(rule.to_line()) == rule


@settings(max_examples=100, deadline=None)
@given(
    lines=st.lists(
        st.text(alphabet="permitdny icpu0123456789./aeqrg*#\n", max_size=60),
        max_size=6,
    )
)
def test_parse_acl_never_crashes(lines):
    try:
        parse_acl("\n".join(lines))
    except AclParseError:
        pass


def test_parser_rejects_garbage_corpus():
    corpus = [
        "permit",
        "permit tcp",
        "permit tcp 10.0.0.0/8",
        "permit tcp 999.0.0.0/8 any",
        "permit tcp 10.0.0.0/99 any",
        "permit tcp any any eq",
        "permit tcp any any range 1",
        "deny ip any any established",  # established needs tcp
        "\x00\x01\x02",
        "permit tcp any any " + "x" * 1000,
    ]
    for text in corpus:
        with pytest.raises(AclParseError):
            parse_rule(text)


# ----------------------------------------------------------------------
# Packet codec
# ----------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(data=st.binary(max_size=80))
def test_decode_packet_never_crashes(data):
    try:
        header = decode_packet(data)
    except PacketDecodeError:
        return
    assert isinstance(header, PacketHeader)


@settings(max_examples=100, deadline=None)
@given(
    header=st.builds(
        PacketHeader,
        src_ip=st.integers(0, 2**32 - 1),
        dst_ip=st.integers(0, 2**32 - 1),
        proto=st.sampled_from([1, 6, 17, 47]),
        src_port=st.integers(0, 2**16 - 1),
        dst_port=st.integers(0, 2**16 - 1),
        tcp_flags=st.integers(0, 255),
    ),
    flip=st.integers(0, 10_000),
)
def test_codec_bit_flips_fail_closed(header, flip):
    wire = bytearray(encode_packet(header))
    position = flip % (len(wire) * 8)
    wire[position // 8] ^= 1 << (position % 8)
    try:
        decoded = decode_packet(bytes(wire))
    except PacketDecodeError:
        return
    # A surviving decode must still be a structurally valid header.
    assert 0 <= decoded.proto < 256


# ----------------------------------------------------------------------
# Serialized tables
# ----------------------------------------------------------------------

def _sample_blob():
    entries = [
        TernaryEntry(TernaryKey.from_string("01**10**"), i, i) for i in range(6)
    ]
    return serialize_plus(PalmtriePlus.build(entries[:1], 8, stride=3))


@settings(max_examples=150, deadline=None)
@given(data=st.binary(max_size=200))
def test_deserialize_random_bytes_fails_closed(data):
    try:
        deserialize_plus(data)
    except FormatError:
        pass


@settings(max_examples=150, deadline=None)
@given(flip=st.integers(0, 10_000), data=st.data())
def test_deserialize_bit_flips_fail_closed(flip, data):
    blob = bytearray(_sample_blob())
    position = flip % (len(blob) * 8)
    blob[position // 8] ^= 1 << (position % 8)
    try:
        matcher = deserialize_plus(bytes(blob))
    except FormatError:
        # FormatError only: the decode guard must wrap every low-level
        # decoding exception (struct.error, UnicodeDecodeError, ...).
        return
    # A blob that still parses must at least answer lookups sanely.
    matcher.lookup(data.draw(st.integers(0, 255)))


def _sample_frozen_blob():
    entries = [
        TernaryEntry(TernaryKey.from_string("01**10**"), i, i) for i in range(6)
    ]
    return serialize_frozen(freeze(PalmtriePlus.build(entries, 8, stride=3)))


@settings(max_examples=150, deadline=None)
@given(data=st.binary(max_size=200))
def test_deserialize_frozen_random_bytes_fails_closed(data):
    try:
        deserialize_frozen(data)
    except FormatError:
        pass


@settings(max_examples=150, deadline=None)
@given(flip=st.integers(0, 10_000), data=st.data())
def test_deserialize_frozen_bit_flips_fail_closed(flip, data):
    blob = bytearray(_sample_frozen_blob())
    position = flip % (len(blob) * 8)
    blob[position // 8] ^= 1 << (position % 8)
    try:
        matcher = deserialize_frozen(bytes(blob))
    except FormatError:
        return
    matcher.lookup(data.draw(st.integers(0, 255)))


def test_deserialize_frozen_dispatch_cycle_fails_closed():
    """A dispatch word that points back *up* the trie passes every
    range check yet sends ``FrozenMatcher.lookup`` in circles forever.
    The decoder must reject the cycle (found as a multi-minute stall
    under the bit-flip fuzz above when a flip hit a dispatch target)."""
    from repro.core.serialize import _FROZEN_EXT, _FROZEN_HEADER

    blob = bytearray(_sample_frozen_blob())
    header = _FROZEN_HEADER.unpack_from(blob)
    first_leaf, leaf_count = header[5], header[6]
    assert first_leaf > 0, "sample plane must have an internal node"
    # the sample has no stride plan, so dispatch starts right after the
    # bit and maxp sections
    dispatch_off = (
        _FROZEN_HEADER.size
        + _FROZEN_EXT.size
        + 4 * first_leaf
        + 8 * (first_leaf + leaf_count)
    )
    # count = 1, target = node 0: the root dispatches back to itself
    blob[dispatch_off : dispatch_off + 4] = (1).to_bytes(4, "little")
    with pytest.raises(FormatError, match="cycle"):
        deserialize_frozen(bytes(blob))


@settings(max_examples=100, deadline=None)
@given(cut=st.integers(0, 10_000))
def test_deserialize_frozen_truncation_fails_closed(cut):
    blob = _sample_frozen_blob()
    truncated = blob[: cut % len(blob)]
    with pytest.raises(FormatError):
        deserialize_frozen(truncated)


@settings(max_examples=60, deadline=None)
@given(lie=st.integers(0, 2**31 - 1), offset=st.integers(8, 40))
def test_deserialize_frozen_length_lies_fail_closed(lie, offset):
    """Headers whose length fields lie about the payload must not
    crash the decoder with IndexError/MemoryError — FormatError only."""
    blob = bytearray(_sample_frozen_blob())
    position = min(offset, len(blob) - 4)
    blob[position : position + 4] = lie.to_bytes(4, "little")
    try:
        deserialize_frozen(bytes(blob))
    except FormatError:
        pass


# ----------------------------------------------------------------------
# Policy checkpoints (resilience plane)
# ----------------------------------------------------------------------

def _sample_checkpoint_blob():
    from repro.resilience.checkpoint import serialize_checkpoint

    entries = [
        TernaryEntry(TernaryKey.from_string("01**10**"), i, i) for i in range(6)
    ]
    matcher = PalmtriePlus.build(entries, 8, stride=3)
    return serialize_checkpoint(matcher, epoch=2, generation=5)


@settings(max_examples=100, deadline=None)
@given(data=st.binary(max_size=200))
def test_checkpoint_random_bytes_fail_closed(tmp_path_factory, data):
    from repro.resilience.checkpoint import read_checkpoint

    path = tmp_path_factory.mktemp("ckpt") / "c.plmc"
    path.write_bytes(data)
    with pytest.raises((FormatError, OSError)):
        read_checkpoint(str(path))


@settings(max_examples=100, deadline=None)
@given(flip=st.integers(0, 10_000))
def test_checkpoint_bit_flips_fail_closed(tmp_path_factory, flip):
    """Any single flipped bit must be caught (sha-256 envelope)."""
    from repro.resilience.checkpoint import read_checkpoint

    blob = bytearray(_sample_checkpoint_blob())
    position = flip % (len(blob) * 8)
    blob[position // 8] ^= 1 << (position % 8)
    path = tmp_path_factory.mktemp("ckpt") / "c.plmc"
    path.write_bytes(bytes(blob))
    with pytest.raises(FormatError):
        read_checkpoint(str(path))


# ----------------------------------------------------------------------
# Trace files
# ----------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(data=st.binary(max_size=100))
def test_load_trace_random_bytes_fail_closed(tmp_path_factory, data):
    path = tmp_path_factory.mktemp("fuzz") / "t.trace"
    path.write_bytes(data)
    try:
        load_trace(str(path))
    except TraceFormatError:
        pass


def test_trace_roundtrip_random(tmp_path):
    rng = random.Random(99)
    queries = [rng.getrandbits(128) for _ in range(200)]
    path = str(tmp_path / "t.trace")
    save_trace(queries, 128, path)
    assert load_trace(path) == (queries, 128)
