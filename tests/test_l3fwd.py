"""Unit tests for the l3fwd-style forwarding pipeline (repro.apps.l3fwd)."""

import pytest

from repro.acl.compiler import compile_acl
from repro.acl.parser import parse_acl
from repro.apps.l3fwd import L3Forwarder
from repro.packet.codec import encode_packet
from repro.packet.headers import PROTO_TCP, PROTO_UDP, PacketHeader

ACL = """\
permit tcp any 10.0.0.0/8 eq 80
permit udp any eq 53 10.0.0.0/8
deny ip any 10.0.0.0/8
permit ip any any
"""

ROUTES = [
    (0x0A0000, 24, 1),   # 10.0.0.0/24 -> port 1
    (0x0A, 8, 2),        # 10.0.0.0/8  -> port 2
    (0, 0, 0),           # default     -> port 0
]


@pytest.fixture()
def forwarder():
    return L3Forwarder(compile_acl(parse_acl(ACL)), ROUTES)


class TestPipeline:
    def test_permit_then_lpm(self, forwarder):
        verdict = forwarder.process(
            PacketHeader(0x01020304, 0x0A000005, PROTO_TCP, 40000, 80)
        )
        assert verdict.action == "forward"
        assert verdict.out_port == 1  # most specific route
        assert verdict.rule_index == 0

    def test_less_specific_route(self, forwarder):
        verdict = forwarder.process(
            PacketHeader(0x01020304, 0x0A990005, PROTO_TCP, 40000, 80)
        )
        assert verdict.out_port == 2

    def test_acl_drop_skips_routing(self, forwarder):
        verdict = forwarder.process(
            PacketHeader(0x01020304, 0x0A000005, PROTO_TCP, 40000, 22)
        )
        assert verdict.action == "acl-drop"
        assert verdict.out_port is None
        assert verdict.rule_index == 2

    def test_default_route(self, forwarder):
        verdict = forwarder.process(
            PacketHeader(0x01020304, 0xC0000201, PROTO_UDP, 53, 53)
        )
        assert verdict.action == "forward"
        assert verdict.out_port == 0

    def test_no_route(self):
        forwarder = L3Forwarder(compile_acl(parse_acl(ACL)), [(0x0A, 8, 2)])
        verdict = forwarder.process(
            PacketHeader(0x01020304, 0xC0000201, PROTO_TCP, 1, 2)
        )
        assert verdict.action == "no-route"

    def test_implicit_default_action(self):
        forwarder = L3Forwarder(
            compile_acl(parse_acl("permit tcp any 10.0.0.0/8 eq 80\n")), ROUTES
        )
        verdict = forwarder.process(PacketHeader(1, 2, PROTO_UDP, 3, 4))
        assert verdict.action == "acl-drop"
        assert verdict.rule_index is None


class TestStatsAndBatch:
    def test_counters(self, forwarder):
        headers = [
            PacketHeader(0x01020304, 0x0A000005, PROTO_TCP, 40000, 80),  # fwd port1
            PacketHeader(0x01020304, 0x0A000005, PROTO_TCP, 40000, 22),  # drop
            PacketHeader(0x01020304, 0xC0000201, PROTO_TCP, 40000, 9),   # fwd port0
        ]
        verdicts = forwarder.process_batch(headers)
        assert [v.action for v in verdicts] == ["forward", "acl-drop", "forward"]
        stats = forwarder.stats
        assert stats.received == 3
        assert stats.forwarded == 2
        assert stats.acl_dropped == 1
        assert stats.per_port_tx == {1: 1, 0: 1}

    def test_raw_bytes_path(self, forwarder):
        wire = encode_packet(PacketHeader(0x01020304, 0x0A000005, PROTO_TCP, 40000, 80))
        verdict = forwarder.process_bytes(wire)
        assert verdict.action == "forward"

    def test_decode_error_counted(self, forwarder):
        verdict = forwarder.process_bytes(b"\x00\x01\x02")
        assert verdict.action == "error"
        assert forwarder.stats.decode_errors == 1
        assert forwarder.stats.received == 1


class TestRouteUpdates:
    def test_add_and_withdraw(self, forwarder):
        header = PacketHeader(0x01020304, 0x0A000105, PROTO_TCP, 40000, 80)
        assert forwarder.process(header).out_port == 2
        forwarder.add_route(0x0A0001, 24, 7)
        assert forwarder.process(header).out_port == 7
        assert forwarder.withdraw_route(0x0A0001, 24)
        assert forwarder.process(header).out_port == 2
        assert not forwarder.withdraw_route(0x0A0001, 24)

    def test_custom_matcher(self):
        from repro.baselines.sorted_list import SortedListMatcher

        acl = compile_acl(parse_acl(ACL))
        matcher = SortedListMatcher.build(acl.entries, 128)
        forwarder = L3Forwarder(acl, ROUTES, matcher=matcher)
        verdict = forwarder.process(
            PacketHeader(0x01020304, 0x0A000005, PROTO_TCP, 40000, 80)
        )
        assert verdict.action == "forward"
