"""Unit tests for dataset/trace file I/O (repro.workloads.io)."""

import pytest

from repro.workloads.campus import campus_rules
from repro.workloads.io import TraceFormatError, load_acl, load_trace, save_acl, save_trace


class TestAclFiles:
    def test_roundtrip(self, tmp_path):
        rules = campus_rules(1)
        path = str(tmp_path / "campus.acl")
        save_acl(rules, path, comment="campus D_1\nsecond line")
        assert load_acl(path) == rules

    def test_comment_written(self, tmp_path):
        path = str(tmp_path / "x.acl")
        save_acl(campus_rules(0), path, comment="hello")
        assert open(path).readline() == "# hello\n"

    def test_empty_acl(self, tmp_path):
        path = str(tmp_path / "empty.acl")
        save_acl([], path)
        assert load_acl(path) == []


class TestTraceFiles:
    def test_roundtrip(self, tmp_path):
        queries = [0, 1, (1 << 128) - 1, 0xDEADBEEF << 64]
        path = str(tmp_path / "t.trace")
        written = save_trace(queries, 128, path)
        assert written == 20 + len(queries) * 16
        loaded, key_length = load_trace(path)
        assert loaded == queries
        assert key_length == 128

    def test_odd_key_length_rounds_up(self, tmp_path):
        path = str(tmp_path / "t.trace")
        save_trace([0b101], 3, path)
        loaded, key_length = load_trace(path)
        assert loaded == [0b101]
        assert key_length == 3

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "t.trace")
        save_trace([], 128, path)
        assert load_trace(path) == ([], 128)

    def test_query_out_of_range(self, tmp_path):
        with pytest.raises(ValueError, match="does not fit"):
            save_trace([1 << 128], 128, str(tmp_path / "t.trace"))

    def test_bad_key_length(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            save_trace([], 0, str(tmp_path / "t.trace"))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_bytes(b"PTRC")
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace(str(path))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace([1], 8, str(path))
        data = bytearray(path.read_bytes())
        data[0] = ord("X")
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="magic"):
            load_trace(str(path))

    def test_truncated_body(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace([1, 2, 3], 32, str(path))
        path.write_bytes(path.read_bytes()[:-2])
        with pytest.raises(TraceFormatError, match="body"):
            load_trace(str(path))
