"""Unit and property tests for port-range expansion (repro.acl.ranges)."""

import pytest
from hypothesis import given, strategies as st

from repro.acl.ranges import range_to_keys, range_to_prefixes


class TestRangeToPrefixes:
    def test_single_value(self):
        assert range_to_prefixes(53, 53) == [(53, 16)]

    def test_full_range_is_one_wildcard(self):
        assert range_to_prefixes(0, 0xFFFF) == [(0, 0)]

    def test_aligned_block(self):
        assert range_to_prefixes(1024, 2047) == [(1024, 6)]

    def test_classic_ephemeral(self):
        # [1024, 65535] needs the textbook 6-prefix cover.
        prefixes = range_to_prefixes(1024, 65535)
        assert prefixes == [
            (1024, 6),
            (2048, 5),
            (4096, 4),
            (8192, 3),
            (16384, 2),
            (32768, 1),
        ]

    def test_worst_case_bound(self):
        # The minimal cover never exceeds 2W - 2 prefixes.
        prefixes = range_to_prefixes(1, 0xFFFE)
        assert len(prefixes) <= 2 * 16 - 2

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            range_to_prefixes(10, 5)
        with pytest.raises(ValueError):
            range_to_prefixes(0, 1 << 16)
        with pytest.raises(ValueError):
            range_to_prefixes(0, 1, width=0)

    def test_small_width(self):
        assert range_to_prefixes(2, 3, width=4) == [(2, 3)]


class TestRangeToKeys:
    def test_keys_shape(self):
        keys = range_to_keys(2, 3, width=4)
        assert [k.to_string() for k in keys] == ["001*"]

    def test_exact_port(self):
        (key,) = range_to_keys(53, 53)
        assert key.is_exact
        assert key.data == 53


@given(
    bounds=st.tuples(st.integers(0, 255), st.integers(0, 255)).map(sorted),
)
def test_cover_is_exact_partition(bounds):
    """Property: the union of the generated keys matches exactly [lo, hi],
    with no value covered twice."""
    lo, hi = bounds
    keys = range_to_keys(lo, hi, width=8)
    covered = sorted(value for key in keys for value in key.enumerate_matches())
    assert covered == list(range(lo, hi + 1))


@given(
    lo=st.integers(0, 0xFFFF),
    span=st.integers(0, 0xFFFF),
)
def test_cover_size_bound_16bit(lo, span):
    hi = min(lo + span, 0xFFFF)
    prefixes = range_to_prefixes(lo, hi)
    assert 1 <= len(prefixes) <= 30
    # Blocks are disjoint, sorted and contiguous.
    position = lo
    for value, prefix_len in prefixes:
        assert value == position
        position += 1 << (16 - prefix_len)
    assert position == hi + 1
