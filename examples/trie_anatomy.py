#!/usr/bin/env python3
"""Dissect Palmtrie structures: shape stats, memory, Graphviz export.

Uses the introspection tooling to show *why* the paper's design choices
work: how stride changes depth and branching, how much of the traversal
is don't-care branching, what compression saves, and how the modeled C
memory compares to actual CPython memory.  Writes the paper's Table 1
trie as ``table1_basic.dot`` / ``table1_k3.dot`` (render with Graphviz:
``dot -Tpng table1_k3.dot -o table1_k3.png``).

Run:  python examples/trie_anatomy.py
"""

from repro import BasicPalmtrie, MultibitPalmtrie, PalmtriePlus, TernaryEntry, TernaryKey
from repro.bench.memory import deep_sizeof
from repro.core.introspect import to_dot, trie_shape
from repro.workloads.campus import campus_acl

TABLE1 = [
    ("011*1000", 1, 6), ("1*0***10", 2, 8), ("0001****", 3, 9),
    ("10110011", 4, 3), ("0*1101**", 5, 7), ("1110****", 6, 4),
    ("010010**", 7, 5), ("01110***", 8, 2), ("1*******", 9, 1),
]


def table1_dots() -> None:
    entries = [TernaryEntry(TernaryKey.from_string(k), v, p) for k, v, p in TABLE1]
    basic = BasicPalmtrie.build(entries, 8)
    stride3 = MultibitPalmtrie.build(entries, 8, stride=3)
    for name, trie in (("table1_basic.dot", basic), ("table1_k3.dot", stride3)):
        with open(name, "w") as handle:
            handle.write(to_dot(trie, title=name.removesuffix(".dot")))
        print(f"wrote {name}")


def shape_by_stride() -> None:
    acl = campus_acl(4)
    print(f"\ncampus D_4 ({len(acl.entries)} entries): shape by stride")
    print(f"{'k':>2} {'internal':>9} {'leaves':>7} {'height':>7} "
          f"{'avg depth':>10} {'branching':>10} {'dont-care %':>12}")
    for k in (1, 2, 4, 6, 8):
        trie = MultibitPalmtrie.build(acl.entries, 128, stride=k)
        shape = trie_shape(trie)
        print(f"{k:>2} {shape.internal_nodes:>9} {shape.leaves:>7} {shape.height:>7} "
              f"{shape.average_leaf_depth:>10.2f} {shape.average_branching:>10.2f} "
              f"{100 * shape.dont_care_fraction:>11.1f}%")


def memory_story() -> None:
    acl = campus_acl(4)
    print(f"\ncampus D_4: modeled C bytes vs actual CPython bytes")
    print(f"{'structure':>12} {'modeled C':>12} {'python':>12} {'ratio':>6}")
    for name, matcher in (
        ("palmtrie1", MultibitPalmtrie.build(acl.entries, 128, stride=1)),
        ("palmtrie8", MultibitPalmtrie.build(acl.entries, 128, stride=8)),
        ("plus8", PalmtriePlus.build(acl.entries, 128, stride=8)),
    ):
        modeled = matcher.memory_bytes()
        python = deep_sizeof(matcher)
        print(f"{name:>12} {modeled:>12,} {python:>12,} {python / modeled:>6.1f}")
    print("\n(the Fig. 9 claim is visible in the modeled column: palmtrie8")
    print(" explodes, plus8 collapses back to the palmtrie1 level)")


def main() -> None:
    table1_dots()
    shape_by_stride()
    memory_story()


if __name__ == "__main__":
    main()
