#!/usr/bin/env python3
"""Walk through the paper's worked examples (Tables 1-2, Figures 1-4).

Prints the radix tree / Patricia trie of Figure 1, the Table 1 ternary
matching table, the basic-Palmtrie lookup trace for query 01110101
(§3.3), and the stride-3 key paths behind Figure 4 — a guided tour of
the data structures for readers following along with the paper.

Run:  python examples/paper_walkthrough.py
"""

from repro import BasicPalmtrie, MultibitPalmtrie, PatriciaTrie, RadixTree, TernaryEntry, TernaryKey
from repro.core.multibit import EXACT, key_path

TABLE1 = [
    ("011*1000", 1, 6), ("1*0***10", 2, 8), ("0001****", 3, 9),
    ("10110011", 4, 3), ("0*1101**", 5, 7), ("1110****", 6, 4),
    ("010010**", 7, 5), ("01110***", 8, 2), ("1*******", 9, 1),
]


def section(title: str) -> None:
    print(f"\n{'=' * 60}\n{title}\n{'=' * 60}")


def figure1() -> None:
    section("Figure 1: radix tree vs Patricia trie (keys 100, 001, 010)")
    radix = RadixTree(3)
    patricia = PatriciaTrie(3)
    for value, bits in enumerate((0b100, 0b001, 0b010), start=1):
        radix.insert(bits, 3, value)
        patricia.insert(bits, value)
    print(f"radix tree nodes:     {radix.node_count()} (keeps unary chains)")
    print(f"patricia trie nodes:  {patricia.node_count()} (2n - 1 for n keys)")
    for bits in (0b100, 0b001, 0b010):
        print(f"  lookup {bits:03b} -> value {patricia.lookup(bits)}")


def table1() -> None:
    section("Table 1: the example ternary matching table")
    print(f"{'Entry':>5}  {'Key':10} {'Value':>5}  {'Priority':>8}")
    for key, value, priority in TABLE1:
        print(f"{value:>5}  {key:10} {value:>5}  {priority:>8}")


def basic_lookup_trace() -> None:
    section("§3.3: basic Palmtrie lookup of query 01110101")
    entries = [TernaryEntry(TernaryKey.from_string(k), v, p) for k, v, p in TABLE1]
    trie = BasicPalmtrie.build(entries, 8)
    query = 0b01110101
    matching = [(e.value, e.priority) for e in entries if e.matches(query)]
    print(f"query 01110101 matches entries {[m[0] for m in matching]} "
          f"with priorities {[m[1] for m in matching]}")
    result = trie.lookup(query)
    print(f"priority encoding selects entry {result.value} (priority {result.priority})")
    trie.stats.reset()
    trie.profile_lookup(query)
    work = trie.stats.per_lookup()
    print(f"work: {work['node_visits']:.0f} node visits, "
          f"{work['key_comparisons']:.0f} full key comparisons")


def figure4_paths() -> None:
    section("Figure 4: k=3 stride paths of the Table 1 keys")
    print("Each key splits at don't-care bits and into 3-bit chunks;")
    print("(bit, kind, slot) per step — negative bits pad below bit 0.\n")
    for key_text, value, _priority in TABLE1:
        steps = key_path(TernaryKey.from_string(key_text), 3)
        rendered = " -> ".join(
            f"[bit {bit:+d} {'exact' if kind == EXACT else 'tern.'} #{slot}]"
            for bit, kind, slot in steps
        )
        print(f"  key {key_text} (entry {value}): {rendered}")
    entries = [TernaryEntry(TernaryKey.from_string(k), v, p) for k, v, p in TABLE1]
    trie = MultibitPalmtrie.build(entries, 8, stride=3)
    print(f"\nroot bit index: {trie._root.bit} (the paper's 'bit index of Node 2 is 5')")
    result = trie.lookup(0b01110101)
    print(f"stride-3 lookup of 01110101 -> entry {result.value} "
          f"(matches the Figure 4 walkthrough)")


def main() -> None:
    figure1()
    table1()
    basic_lookup_trace()
    figure4_paths()
    print()


if __name__ == "__main__":
    main()
