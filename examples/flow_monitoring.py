#!/usr/bin/env python3
"""Flow monitoring with Palmtrie classification (paper §6).

The paper's conclusion expects flow monitoring (IPFIX, RFC 7011) to be
a natural Palmtrie application: each packet is classified by a ternary
rule table into a traffic class, and per-flow records are aggregated
and exported.  This example monitors a synthetic traffic mix, prints
per-class totals, and exports idle flows as IPFIX-style records.

Run:  python examples/flow_monitoring.py
"""

import random

from repro import FlowMonitor, PacketHeader, compile_acl, parse_acl
from repro.acl.ip import format_ipv4

CLASS_RULES = """
# Classification table: value = rule index = traffic class.
permit udp any eq 53 any          # 0: DNS responses
permit udp any any eq 53          # 1: DNS queries
permit tcp any any eq 443         # 2: HTTPS
permit tcp any eq 443 any         # 3: HTTPS (return)
permit tcp any any eq 25          # 4: SMTP
permit icmp any any               # 5: ICMP
permit ip any any                 # 6: other
"""

CLASS_NAMES = ["dns-resp", "dns-query", "https", "https-ret", "smtp", "icmp", "other"]


def synthesize(rng: random.Random, monitor: FlowMonitor) -> None:
    clock = 0.0
    # A handful of long HTTPS flows...
    flows = [
        (0x0A000000 | rng.getrandbits(16), rng.getrandbits(32), rng.randrange(1024, 65536))
        for _ in range(20)
    ]
    for _ in range(300):
        clock += rng.expovariate(50)
        src, dst, sport = flows[rng.randrange(len(flows))]
        monitor.observe(
            PacketHeader(src, dst, 6, sport, 443, 0x18),
            length=rng.randrange(60, 1500),
            timestamp=clock,
        )
        # ... interleaved with DNS chatter and stray ICMP.
        if rng.random() < 0.3:
            monitor.observe(
                PacketHeader(src, 0x08080808, 17, rng.randrange(1024, 65536), 53),
                length=72,
                timestamp=clock,
            )
        if rng.random() < 0.05:
            monitor.observe(PacketHeader(src, dst, 1), length=64, timestamp=clock)


def main() -> None:
    rng = random.Random(8)
    acl = compile_acl(parse_acl(CLASS_RULES))
    monitor = FlowMonitor(acl.entries, idle_timeout=5.0, default_class=len(CLASS_NAMES) - 1)

    synthesize(rng, monitor)

    print(f"observed {monitor.packets_seen} packets / {monitor.octets_seen} bytes "
          f"in {monitor.active_flows()} active flows\n")
    print(f"{'class':10} {'packets':>8} {'bytes':>10}")
    for klass, (packets, octets) in sorted(monitor.class_totals().items()):
        print(f"{CLASS_NAMES[klass]:10} {packets:>8} {octets:>10}")

    # Let the clock advance past the idle timeout and export.
    exported = monitor.export_expired(now=1e9)
    print(f"\nexported {len(exported)} IPFIX records; first three:")
    for record in exported[:3]:
        print(f"  {format_ipv4(record['sourceIPv4Address'])} -> "
              f"{format_ipv4(record['destinationIPv4Address'])} "
              f"proto {record['protocolIdentifier']}: "
              f"{record['packetDeltaCount']} pkts, {record['octetDeltaCount']} bytes, "
              f"class {CLASS_NAMES[record['className']]}")


if __name__ == "__main__":
    main()
