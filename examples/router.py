#!/usr/bin/env python3
"""A software router: l3fwd-acl over this library (paper §4 context).

Reconstructs the application the paper benchmarks against — DPDK's
``l3fwd-acl`` — entirely from this library's pieces: Palmtrie+ for the
ACL stage, Poptrie for the routing stage, and the packet codec for raw
frames.  Streams a traffic mix through it, prints per-port forwarding
counters, then performs a BGP-style route flap while traffic flows.

Run:  python examples/router.py
"""

import random
import time

from repro import PacketHeader, compile_acl, parse_acl
from repro.apps.l3fwd import L3Forwarder

ACL = """
# Edge filter: serve web + DNS into 10.0.0.0/8, drop the rest inbound,
# pass everything outbound.
permit tcp any 10.0.0.0/8 eq 80
permit tcp any 10.0.0.0/8 eq 443
permit udp any eq 53 10.0.0.0/8
permit tcp any 10.0.0.0/8 established
deny   ip  any 10.0.0.0/8
permit ip  10.0.0.0/8 any
deny   ip  any any
"""

ROUTES = [
    (0x0A0000, 24, 1),  # 10.0.0.0/24    -> port 1 (server rack)
    (0x0A, 8, 2),       # 10.0.0.0/8     -> port 2 (campus core)
    (0xC0A8 << 8, 24, 3),  # 192.168.0.0/24 -> port 3 (management)
    (0, 0, 0),          # default        -> port 0 (upstream)
]

PACKETS = 4000


def traffic(rng: random.Random):
    for _ in range(PACKETS):
        roll = rng.random()
        if roll < 0.4:  # inbound web requests
            yield PacketHeader(
                rng.getrandbits(32), 0x0A000000 | rng.getrandbits(8), 6,
                rng.randrange(1024, 65536), rng.choice((80, 443)), 0x02,
            )
        elif roll < 0.6:  # outbound from campus
            yield PacketHeader(
                0x0A000000 | rng.getrandbits(24), rng.getrandbits(32), 6,
                rng.randrange(1024, 65536), 443, 0x18,
            )
        elif roll < 0.75:  # DNS responses into campus
            yield PacketHeader(
                rng.getrandbits(32), 0x0A000000 | rng.getrandbits(24), 17,
                53, rng.randrange(1024, 65536),
            )
        else:  # inbound probes that the ACL should drop
            yield PacketHeader(
                rng.getrandbits(32), 0x0A000000 | rng.getrandbits(24), 6,
                rng.randrange(1024, 65536), rng.choice((22, 23, 5060, 3389)), 0x02,
            )


def main() -> None:
    rng = random.Random(7)
    acl = compile_acl(parse_acl(ACL))
    router = L3Forwarder(acl, ROUTES)
    print(f"ACL: {len(acl.rules)} rules ({len(acl.entries)} entries); "
          f"RIB: {len(router.rib)} routes\n")

    start = time.perf_counter()
    for header in traffic(rng):
        router.process(header)
    elapsed = time.perf_counter() - start
    stats = router.stats
    print(f"processed {stats.received} packets in {elapsed:.2f} s "
          f"({stats.received / elapsed:,.0f} pkt/s)")
    print(f"  forwarded  {stats.forwarded}")
    print(f"  acl-drop   {stats.acl_dropped}")
    print(f"  no-route   {stats.no_route}")
    print("  tx per port:", dict(sorted(stats.per_port_tx.items())))

    # Route flap: the /24 moves to port 4 and back.
    probe = PacketHeader(rng.getrandbits(32), 0x0A000007, 6, 40000, 80, 0x02)
    print(f"\nroute flap for 10.0.0.0/24:")
    print(f"  before: port {router.process(probe).out_port}")
    router.add_route(0x0A0000, 24, 4)
    print(f"  moved:  port {router.process(probe).out_port}")
    router.withdraw_route(0x0A0000, 24)
    router.add_route(0x0A0000, 24, 1)
    print(f"  back:   port {router.process(probe).out_port}")


if __name__ == "__main__":
    main()
