#!/usr/bin/env python3
"""A stateless software firewall over raw packet bytes.

Demonstrates the full data path a deployment would use: raw IPv4 wire
bytes are decoded (``repro.packet.codec``), matched against a compiled
campus-network ACL with the size-adaptive matcher of paper §5, and
counted per verdict.  The traffic mixes legitimate flows with the
reverse-byte-order SIP scan from the paper's evaluation.

Run:  python examples/firewall.py
"""

import random
import time

from repro import AdaptiveMatcher, PacketHeader, decode_packet, encode_packet
from repro.acl.layout import TCP_ACK, TCP_SYN
from repro.acl.rule import Action
from repro.workloads.campus import campus_acl
from repro.workloads.traffic import reverse_byte_scan

PACKETS = 2000


def synthesize_wire_traffic(rng: random.Random) -> list[bytes]:
    """A mixed packet stream, already serialized to IPv4 wire format."""
    stream = []
    # Legitimate: outbound flows from campus hosts + returning ACKs.
    for _ in range(PACKETS // 2):
        host = 0x0A000000 | rng.getrandbits(24)
        server = rng.getrandbits(32)
        sport = rng.randrange(1024, 65536)
        stream.append(encode_packet(PacketHeader(host, server, 6, sport, 443, TCP_SYN)))
        stream.append(encode_packet(PacketHeader(server, host, 6, 443, sport, TCP_ACK)))
    # Attack: the reverse-byte order scan (TCP SYN, dport 5060).
    for query in reverse_byte_scan(PACKETS // 2, seed=7):
        stream.append(encode_packet(PacketHeader.from_query(query)))
    rng.shuffle(stream)
    return stream


def main() -> None:
    rng = random.Random(42)
    acl = campus_acl(4)  # 272 rules over 10.0.0.0/8 split into /12s
    print(f"policy: campus D_4, {len(acl.rules)} rules, {len(acl.entries)} entries")

    firewall = AdaptiveMatcher.build(acl.entries, key_length=128)
    print(f"adaptive matcher selected: {firewall.active_structure}\n")

    stream = synthesize_wire_traffic(rng)
    verdicts = {"permit": 0, "deny": 0, "implicit-deny": 0}
    scan_drops = 0
    start = time.perf_counter()
    for wire in stream:
        header = decode_packet(wire)
        entry = firewall.lookup(header.to_query())
        if entry is None:
            verdicts["implicit-deny"] += 1
        else:
            action = acl.rules[entry.value].action
            verdicts[action.value] += 1
            if action is Action.DENY and header.dst_port == 5060:
                scan_drops += 1
    elapsed = time.perf_counter() - start

    total = len(stream)
    print(f"processed {total} packets in {elapsed:.2f} s "
          f"({total / elapsed:,.0f} pkt/s decode+match)")
    for verdict, count in verdicts.items():
        print(f"  {verdict:14} {count:6}  ({100 * count / total:.1f} %)")
    print(f"\nSIP-scan probes dropped by policy: {scan_drops}")


if __name__ == "__main__":
    main()
