#!/usr/bin/env python3
"""Layer 2 filtering over a pcap capture (paper §3.1's deferred fields).

The paper lists the L2 header fields (MACs, EtherType, VLAN) and then
sets them aside "for simplicity"; this example uses the library's L2
extension end to end: build a 256-bit L2-L4 policy (management-VLAN
lockdown + vendor-OUI quarantine), write a synthetic capture to a real
``.pcap`` file, read it back, and filter frame by frame.

Run:  python examples/l2_filtering.py
"""

import random

from repro import PacketHeader, PalmtriePlus, decode_packet, encode_packet
from repro.acl.layer2 import LAYOUT_L2, EtherType, L2Rule, compile_l2_rules, format_mac, parse_mac
from repro.packet.pcap import LINKTYPE_ETHERNET, PcapPacket, read_pcap, write_pcap

MGMT_VLAN = 10
USER_VLAN = 100
ADMIN_MAC = parse_mac("02:aa:00:00:00:01")
#: a vendor OUI with a known-bad firmware (quarantine its devices)
BAD_OUI = parse_mac("02:bb:cc:00:00:00")
OUI_CARE = 0xFFFFFF000000
EXACT = (1 << 48) - 1

POLICY = [
    L2Rule(priority=40, value="admin-mgmt", src_mac=(ADMIN_MAC, EXACT), vlan=MGMT_VLAN),
    L2Rule(priority=30, value="mgmt-lockdown", vlan=MGMT_VLAN),          # deny class
    L2Rule(priority=20, value="quarantine", src_mac=(BAD_OUI, OUI_CARE)),  # deny class
    L2Rule(priority=10, value="user", vlan=USER_VLAN, ethertype=EtherType.IPV4),
]
PERMIT_CLASSES = {"admin-mgmt", "user"}


def synthesize_capture(path: str, rng: random.Random) -> list[tuple[int, int]]:
    """Write frames to a pcap; returns (vlan, src_mac) per packet.

    Note: the capture stores the IP packet; VLAN/MAC metadata travels
    alongside (a real deployment reads them from the 802.1Q header —
    the pcap here uses one synthetic MAC pair for simplicity).
    """
    frames = []
    metadata = []
    for i in range(400):
        roll = rng.random()
        if roll < 0.1:
            vlan, src = MGMT_VLAN, ADMIN_MAC
        elif roll < 0.25:
            vlan, src = MGMT_VLAN, 0x020000000000 | rng.getrandbits(24)  # intruder
        elif roll < 0.4:
            vlan, src = USER_VLAN, BAD_OUI | rng.getrandbits(24)         # quarantined
        else:
            vlan, src = USER_VLAN, 0x02DD00000000 | rng.getrandbits(24)  # normal user
        header = PacketHeader(
            0x0A000000 | rng.getrandbits(16), rng.getrandbits(32), 6,
            rng.randrange(1024, 65536), 443, 0x18,
        )
        frames.append(PcapPacket(float(i) / 1000, encode_packet(header)))
        metadata.append((vlan, src))
    write_pcap(path, frames, linktype=LINKTYPE_ETHERNET)
    return metadata


def main() -> None:
    rng = random.Random(21)
    entries = compile_l2_rules(POLICY)
    matcher = PalmtriePlus.build(entries, LAYOUT_L2.length, stride=8)
    print(f"L2 policy: {len(POLICY)} rules over {LAYOUT_L2.length}-bit keys "
          f"({matcher.memory_bytes()} modeled bytes)\n")

    metadata = synthesize_capture("/tmp/l2demo.pcap", rng)
    verdicts: dict[str, int] = {}
    for (vlan, src_mac), packet in zip(metadata, read_pcap("/tmp/l2demo.pcap")):
        header = decode_packet(packet.data)
        query = LAYOUT_L2.pack_query(
            dst_mac=0x020000000002,
            src_mac=src_mac,
            ethertype=EtherType.IPV4,
            vlan=vlan,
            pcp=0,
            src_ip=header.src_ip,
            dst_ip=header.dst_ip,
            proto=header.proto,
            src_port=header.src_port,
            dst_port=header.dst_port,
            tcp_flags=header.tcp_flags,
        )
        entry = matcher.lookup(query)
        klass = "no-match" if entry is None else entry.value
        verdicts[klass] = verdicts.get(klass, 0) + 1

    print(f"{'class':15} {'frames':>7}  verdict")
    for klass, count in sorted(verdicts.items(), key=lambda kv: -kv[1]):
        verdict = "PERMIT" if klass in PERMIT_CLASSES else "DENY"
        print(f"{klass:15} {count:>7}  {verdict}")
    print(f"\nadmin station: {format_mac(ADMIN_MAC)}; quarantined OUI: "
          f"{format_mac(BAD_OUI)[:8]}:*:*:*")


if __name__ == "__main__":
    main()
