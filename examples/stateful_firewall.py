#!/usr/bin/env python3
"""Stateful vs stateless: two ways to admit return traffic (paper §1, §3.1).

The paper's stateless approach encodes "established" as ternary
TCP-flag entries (ACK or RST set); a stateful firewall instead tracks
connections and fast-paths returns.  This example runs the same traffic
through both and compares: verdict agreement on well-behaved flows,
the attack case where they differ (ACK scans sail through stateless
``established`` rules but bounce off connection tracking), and how much
ACL work the flow table saves.

Run:  python examples/stateful_firewall.py
"""

import random

from repro import compile_acl, parse_acl, PacketHeader
from repro.acl.rule import Action
from repro.apps.conntrack import StatefulFirewall
from repro.apps.firewall import Firewall

# The stateless policy needs the `established` hack for return traffic.
STATELESS_ACL = """
permit tcp 10.0.0.0/8 any
permit tcp any 10.0.0.0/8 established
deny   ip  any any
"""

# The stateful policy only states intent: outbound TCP is allowed.
STATEFUL_ACL = """
permit tcp 10.0.0.0/8 any
deny   ip  any any
"""

FLOWS = 300


def main() -> None:
    rng = random.Random(11)
    stateless = Firewall(compile_acl(parse_acl(STATELESS_ACL)))
    stateful = StatefulFirewall(compile_acl(parse_acl(STATEFUL_ACL)))

    # 1. Well-behaved outbound flows: SYN out, SYN-ACK in, data both ways.
    agree = 0
    total = 0
    clock = 0.0
    for _ in range(FLOWS):
        inside = 0x0A000000 | rng.getrandbits(16)
        outside = rng.getrandbits(32)
        sport = rng.randrange(1024, 65536)
        exchange = [
            PacketHeader(inside, outside, 6, sport, 443, 0x02),   # SYN
            PacketHeader(outside, inside, 6, 443, sport, 0x12),   # SYN-ACK
            PacketHeader(inside, outside, 6, sport, 443, 0x10),   # ACK
            PacketHeader(outside, inside, 6, 443, sport, 0x18),   # data
        ]
        for packet in exchange:
            clock += 0.001
            a = stateless.check(packet)
            b = stateful.check(packet, clock)
            total += 1
            agree += a == b
    print(f"well-behaved flows: {agree}/{total} verdicts agree "
          f"({100 * agree / total:.1f} %)")

    # 2. The attack the stateless hack cannot stop: an inbound ACK scan
    #    matches `established` (ACK bit set) without any prior flow.
    scan_hits_stateless = 0
    scan_hits_stateful = 0
    for i in range(200):
        probe = PacketHeader(
            rng.getrandbits(32), 0x0A000000 | i, 6,
            rng.randrange(1024, 65536), 80, 0x10,   # bare ACK
        )
        clock += 0.001
        scan_hits_stateless += stateless.check(probe) is Action.PERMIT
        scan_hits_stateful += stateful.check(probe, clock) is Action.PERMIT
    print(f"\ninbound ACK scan (200 probes):")
    print(f"  stateless 'established' rule permits: {scan_hits_stateless}")
    print(f"  connection tracking permits:          {scan_hits_stateful}")

    # 3. The efficiency side: state fast-paths most packets past the ACL.
    print(f"\nstateful engine work: {stateful.acl_evaluations} ACL evaluations, "
          f"{stateful.fast_path_hits} flow-table fast paths "
          f"({stateful.connection_count()} live connections)")
    print("\n(the paper's ternary 'established' entries trade exactly this "
          "state\n for two extra TCAM-style entries per rule — §3.1)")


if __name__ == "__main__":
    main()
