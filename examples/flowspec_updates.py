#!/usr/bin/env python3
"""Dynamic rule updates, BGP Flowspec style (paper §1, §4.4).

BGP Flowspec advertises filtering rules to routers at runtime, so the
matcher must absorb a stream of rule insertions and withdrawals.  The
paper's answer: Palmtrie_k supports microsecond-order incremental
updates, and Palmtrie+_k recompiles from it when a batch settles.

This example replays a burst of Flowspec-like drop rules (one per
attacking source prefix) into a live Palmtrie_8, measures per-update
latency, then compiles a Palmtrie+_8 snapshot and verifies both agree.

Run:  python examples/flowspec_updates.py
"""

import random
import statistics
import time

from repro import MultibitPalmtrie, PalmtriePlus, TernaryEntry
from repro.acl.compiler import compile_rule
from repro.acl.parser import parse_rule
from repro.workloads.campus import campus_acl
from repro.workloads.traffic import uniform_traffic

BURST = 400


def flowspec_burst(rng: random.Random, base_priority: int) -> list[TernaryEntry]:
    """Drop rules for random attacker /24s hitting our DNS service."""
    entries = []
    for i in range(BURST):
        attacker = rng.getrandbits(24) << 8
        rule = parse_rule(
            f"deny udp {attacker >> 24}.{(attacker >> 16) & 255}.{(attacker >> 8) & 255}.0/24"
            f" any eq 53"
        )
        entries.extend(compile_rule(rule, value=f"fs-{i}", priority=base_priority + i))
    return entries


def main() -> None:
    rng = random.Random(2020)
    acl = campus_acl(6)
    print(f"baseline policy: campus D_6 ({len(acl.entries)} entries)")

    live = MultibitPalmtrie.build(acl.entries, key_length=128, stride=8)

    # 1. Incremental updates into the live Palmtrie_8.
    burst = flowspec_burst(rng, base_priority=10_000)
    latencies = []
    for entry in burst:
        start = time.perf_counter()
        live.insert(entry)
        latencies.append(time.perf_counter() - start)
    print(f"\ninserted {len(burst)} Flowspec entries into Palmtrie_8:")
    print(f"  mean   {statistics.fmean(latencies) * 1e6:8.1f} us/update")
    print(f"  median {statistics.median(latencies) * 1e6:8.1f} us/update")
    print(f"  p99    {sorted(latencies)[int(0.99 * len(latencies))] * 1e6:8.1f} us/update")

    # 2. Compile the settled table into Palmtrie+_8 (the part the paper
    #    parenthesizes in Table 5).
    start = time.perf_counter()
    snapshot = PalmtriePlus.from_palmtrie(live)
    compile_time = time.perf_counter() - start
    print(f"\ncompiled Palmtrie+_8 snapshot in {compile_time * 1e3:.1f} ms "
          f"({snapshot.memory_bytes() / 2**20:.2f} modeled MiB)")

    # 3. Both structures must agree; the new drop rules must win.
    queries = uniform_traffic(list(acl.entries) + burst, 500, seed=5)
    mismatches = 0
    dropped = 0
    for query in queries:
        a = live.lookup(query)
        b = snapshot.lookup(query)
        if (a and a.priority) != (b and b.priority):
            mismatches += 1
        if b is not None and isinstance(b.value, str) and b.value.startswith("fs-"):
            dropped += 1
    print(f"\nverification: {mismatches} mismatches over {len(queries)} queries; "
          f"{dropped} queries hit the new Flowspec drops")

    # 4. Withdraw the burst (route-flap style) and verify cleanup.
    for entry in burst:
        live.delete(entry.key)
    snapshot = PalmtriePlus.from_palmtrie(live)
    still = sum(
        1
        for query in queries
        if (e := snapshot.lookup(query)) is not None
        and isinstance(e.value, str)
        and e.value.startswith("fs-")
    )
    print(f"after withdrawal: {still} queries still hit Flowspec rules (expect 0)")


if __name__ == "__main__":
    main()
