#!/usr/bin/env python3
"""Pick the right structure for your ACL size (paper §4.3 / §5).

Builds every matcher in the library over growing campus ACLs and
reports build time, modeled memory, measured lookup rate and per-lookup
work — the practical decision the paper distills into: sorted list for
tiny ACLs, Palmtrie_6 for medium, Palmtrie+_8 for large.

Run:  python examples/structure_shootout.py
"""

import time

from repro import (
    BasicPalmtrie,
    DpdkStyleAcl,
    MultibitPalmtrie,
    PalmtriePlus,
    SortedListMatcher,
)
from repro.bench.harness import measure_lookup_rate
from repro.bench.report import Table, format_rate, format_seconds
from repro.workloads.campus import campus_acl
from repro.workloads.traffic import uniform_traffic

CONFIGS = [
    ("sorted-list", lambda e: SortedListMatcher.build(e, 128)),
    ("basic", lambda e: BasicPalmtrie.build(e, 128)),
    ("palmtrie6", lambda e: MultibitPalmtrie.build(e, 128, stride=6)),
    ("plus8", lambda e: PalmtriePlus.build(e, 128, stride=8)),
    ("dpdk-style", lambda e: DpdkStyleAcl.build(e, 128, state_limit=50_000)),
]


def main() -> None:
    for q in (0, 3, 6):
        acl = campus_acl(q)
        entries = list(acl.entries)
        queries = uniform_traffic(entries, 300)
        table = Table(
            f"Campus D_{q}: {len(entries)} ternary entries",
            ["structure", "build", "memory KiB", "lookup rate", "visits/lookup"],
        )
        for name, builder in CONFIGS:
            start = time.perf_counter()
            try:
                matcher = builder(entries)
            except Exception as exc:  # e.g. BuildExplosionError
                table.add_row(name, f"N/A ({type(exc).__name__})", "-", "-", "-")
                continue
            build_time = time.perf_counter() - start
            rate = measure_lookup_rate(matcher, queries, min_duration=0.05, samples=2)
            table.add_row(
                name,
                format_seconds(build_time),
                f"{matcher.memory_bytes() / 1024:.1f}",
                format_rate(rate.lookups_per_second),
                f"{rate.node_visits_per_lookup:.1f}",
            )
        print(table.render())
        print()
    print("Paper's guidance: sorted list < ~100 entries, Palmtrie_6 for medium,")
    print("Palmtrie+_8 for large ACLs — compare the columns above.")


if __name__ == "__main__":
    main()
