#!/usr/bin/env python3
"""Quickstart: compile an ACL and match packets against it.

Builds the paper's Table 2 example ACL (a small stateless firewall
policy for 192.0.2.0/24), compiles it into Palmtrie+ and classifies a
handful of packets.

Run:  python examples/quickstart.py
"""

from repro import PacketHeader, PalmtriePlus, compile_acl, parse_acl
from repro.acl.ip import parse_ipv4
from repro.acl.layout import TCP_ACK, TCP_SYN

ACL_TEXT = """
# Table 2 of the paper: protect the internal network 192.0.2.0/24.
permit ip 192.0.2.0/24 0.0.0.0/0
permit icmp 0.0.0.0/0 192.0.2.0/24
permit udp 0.0.0.0/0 eq 53 192.0.2.0/24
permit tcp 0.0.0.0/0 192.0.2.0/24 established
deny ip 0.0.0.0/0 192.0.2.0/24
"""


def main() -> None:
    # 1. Parse the configuration dialect and expand it into ternary
    #    matching entries (the established rule becomes two entries).
    acl = compile_acl(parse_acl(ACL_TEXT))
    print(f"ACL: {len(acl.rules)} rules -> {len(acl.entries)} ternary entries")

    # 2. Build the lookup structure.  Palmtrie+ with an 8-bit stride is
    #    the paper's recommended configuration for non-tiny ACLs.
    matcher = PalmtriePlus.build(acl.entries, key_length=128, stride=8)
    print(f"structure: {matcher.name}, stride {matcher.stride}, "
          f"{matcher.memory_bytes()} modeled bytes\n")

    # 3. Classify packets.
    inside = parse_ipv4("192.0.2.55")
    outside = parse_ipv4("203.0.113.9")
    packets = [
        ("outbound web request", PacketHeader(inside, outside, 6, 40001, 443, TCP_SYN)),
        ("inbound SYN (blocked)", PacketHeader(outside, inside, 6, 40001, 443, TCP_SYN)),
        ("inbound ACK (established)", PacketHeader(outside, inside, 6, 443, 40001, TCP_ACK)),
        ("inbound DNS response", PacketHeader(outside, inside, 17, 53, 5353)),
        ("inbound UDP probe (blocked)", PacketHeader(outside, inside, 17, 9999, 5353)),
        ("inbound ICMP echo", PacketHeader(outside, inside, 1)),
    ]
    for label, packet in packets:
        entry = matcher.lookup(packet.to_query())
        if entry is None:
            verdict = "DENY (implicit)"
        else:
            rule = acl.rules[entry.value]
            verdict = f"{rule.action.value.upper():6} (rule {entry.value + 1}: {rule.to_line()})"
        print(f"{label:28} -> {verdict}")


if __name__ == "__main__":
    main()
