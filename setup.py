"""Legacy setup shim.

The offline evaluation environment lacks the ``wheel`` package, which
``pip install -e .`` (PEP 660) needs to build an editable wheel.  This
shim lets ``python setup.py develop`` perform the editable install
directly; all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
